#include "sim/cluster.h"

#include <vector>

#include <gtest/gtest.h>

namespace mitos::sim {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig config;
  config.num_machines = 2;
  config.cores_per_machine = 2;
  config.net_latency = 0.001;
  config.net_bandwidth = 1e6;  // 1 MB/s: easy math
  config.local_latency = 0.0001;
  config.local_bandwidth = 1e8;
  config.disk_bandwidth = 1e6;
  return config;
}

TEST(ClusterTest, CpuOccupiesCores) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  std::vector<double> done;
  // 3 tasks of 1s on a 2-core machine: two run in parallel, the third
  // waits for a core.
  for (int i = 0; i < 3; ++i) {
    cluster.ExecCpu(0, 1.0, [&] { done.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 1.0);
  EXPECT_DOUBLE_EQ(done[2], 2.0);
  EXPECT_DOUBLE_EQ(cluster.metrics().cpu_seconds, 3.0);
}

TEST(ClusterTest, MachinesHaveIndependentCores) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  std::vector<double> done;
  cluster.ExecCpu(0, 1.0, [&] { done.push_back(sim.now()); });
  cluster.ExecCpu(1, 1.0, [&] { done.push_back(sim.now()); });
  sim.Run();
  EXPECT_EQ(done, (std::vector<double>{1.0, 1.0}));
}

TEST(ClusterTest, RemoteSendPaysLatencyAndBandwidth) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  double arrived = 0;
  cluster.Send(0, 1, 1000, [&] { arrived = sim.now(); });
  sim.Run();
  // 1000B / 1MB/s = 1ms wire + 1ms latency.
  EXPECT_NEAR(arrived, 0.002, 1e-9);
  EXPECT_EQ(cluster.metrics().messages, 1);
  EXPECT_EQ(cluster.metrics().network_bytes, 1000);
}

TEST(ClusterTest, SenderNicSerializesTransfers) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  std::vector<double> arrivals;
  cluster.Send(0, 1, 1000, [&] { arrivals.push_back(sim.now()); });
  cluster.Send(0, 1, 1000, [&] { arrivals.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second transfer starts after the first leaves the NIC.
  EXPECT_NEAR(arrivals[0], 0.002, 1e-9);
  EXPECT_NEAR(arrivals[1], 0.003, 1e-9);
}

TEST(ClusterTest, DeliveriesAreFifoPerChannel) {
  // A big chunk followed by a tiny marker: the marker must not overtake,
  // remotely or locally.
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  std::vector<int> order;
  cluster.Send(0, 1, 100'000, [&] { order.push_back(1); });
  cluster.Send(0, 1, 8, [&] { order.push_back(2); });
  cluster.Send(0, 0, 100'000, [&] { order.push_back(3); });
  cluster.Send(0, 0, 8, [&] { order.push_back(4); });
  sim.Run();
  auto pos = [&](int x) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == x) return static_cast<int>(i);
    }
    return -1;
  };
  EXPECT_LT(pos(1), pos(2));
  EXPECT_LT(pos(3), pos(4));
}

TEST(ClusterTest, LocalSendIsCheap) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  double arrived = 0;
  cluster.Send(1, 1, 1000, [&] { arrived = sim.now(); });
  sim.Run();
  EXPECT_LT(arrived, 0.001);
  EXPECT_EQ(cluster.metrics().messages, 0);  // loopback is not a message
  EXPECT_EQ(cluster.metrics().local_bytes, 1000);
}

TEST(ClusterTest, DiskSerializesPerMachine) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  std::vector<double> done;
  cluster.DiskIo(0, 1000, [&] { done.push_back(sim.now()); });
  cluster.DiskIo(0, 1000, [&] { done.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 0.001, 1e-9);
  EXPECT_NEAR(done[1], 0.002, 1e-9);
  EXPECT_EQ(cluster.metrics().disk_bytes, 2000);
}

TEST(ClusterTest, DiskReadReportsPacedProgress) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  std::vector<std::pair<int, double>> progress;
  cluster.DiskRead(0, 4000, 4,
                   [&](int i) { progress.emplace_back(i, sim.now()); });
  sim.Run();
  ASSERT_EQ(progress.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(progress[static_cast<size_t>(i)].first, i);
    EXPECT_NEAR(progress[static_cast<size_t>(i)].second, 0.001 * (i + 1),
                1e-9);
  }
}

TEST(ClusterTest, MemoryIoSkipsDiskAccounting) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  double done = -1;
  cluster.DiskIo(0, 8'000'000, [&] { done = sim.now(); }, /*memory=*/true);
  sim.Run();
  // 8 MB at 8 GB/s = 1 ms, and no disk bytes recorded.
  EXPECT_NEAR(done, 0.001, 1e-9);
  EXPECT_EQ(cluster.metrics().disk_bytes, 0);
}

TEST(ClusterTest, MemoryReadDoesNotBlockDisk) {
  Simulator sim;
  auto config = TestConfig();
  Cluster cluster(&sim, config);
  double disk_done = -1;
  cluster.DiskRead(0, 1000, 1, [&](int) { disk_done = sim.now(); },
                   /*memory=*/true);
  cluster.DiskIo(0, 1000, [&] { disk_done = sim.now(); });
  sim.Run();
  // The disk op completes at 1ms as if the memory read never existed.
  EXPECT_NEAR(disk_done, 0.001, 1e-9);
}

}  // namespace
}  // namespace mitos::sim
