// Fault plan parsing and the cluster-level fault model: crash/restart
// epochs, dropped work and deliveries, slowdowns, and seeded message drops.
#include "sim/fault.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sim/cluster.h"

namespace mitos::sim {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig config;
  config.num_machines = 3;
  config.cores_per_machine = 2;
  config.net_latency = 0.001;
  config.net_bandwidth = 1e6;
  config.local_latency = 0.0001;
  config.local_bandwidth = 1e8;
  config.disk_bandwidth = 1e6;
  return config;
}

TEST(FaultPlanTest, ParsesFullSpec) {
  auto plan = FaultPlan::Parse(
      "crash=1@2.5+0.5; drop=0.01@7; slow=2x4; hb=0.1/0.5; stall=3; "
      "retry=0.02/9; rto=0.01; ckpt=2; attempts=5");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->crashes.size(), 1u);
  EXPECT_EQ(plan->crashes[0].machine, 1);
  EXPECT_DOUBLE_EQ(plan->crashes[0].at, 2.5);
  EXPECT_DOUBLE_EQ(plan->crashes[0].restart_after, 0.5);
  EXPECT_DOUBLE_EQ(plan->drop_probability, 0.01);
  EXPECT_EQ(plan->drop_seed, 7u);
  ASSERT_EQ(plan->slowdowns.size(), 1u);
  EXPECT_EQ(plan->slowdowns[0].machine, 2);
  EXPECT_DOUBLE_EQ(plan->slowdowns[0].multiplier, 4.0);
  EXPECT_DOUBLE_EQ(plan->heartbeat_interval, 0.1);
  EXPECT_DOUBLE_EQ(plan->heartbeat_timeout, 0.5);
  EXPECT_DOUBLE_EQ(plan->stall_timeout, 3.0);
  EXPECT_DOUBLE_EQ(plan->retry_backoff, 0.02);
  EXPECT_EQ(plan->max_broadcast_retries, 9);
  EXPECT_DOUBLE_EQ(plan->retransmit_delay, 0.01);
  EXPECT_EQ(plan->checkpoint_every, 2);
  EXPECT_EQ(plan->max_attempts, 5);
  EXPECT_FALSE(plan->empty());
}

TEST(FaultPlanTest, PermanentCrashHasNoRestart) {
  auto plan = FaultPlan::Parse("crash=0@1.5");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->crashes.size(), 1u);
  EXPECT_LT(plan->crashes[0].restart_after, 0);
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  auto plan = FaultPlan::Parse("crash=1@2.5+0.5; drop=0.25@3; slow=0x2");
  ASSERT_TRUE(plan.ok());
  auto again = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(again.ok()) << plan->ToString();
  EXPECT_EQ(again->ToString(), plan->ToString());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("crash=zap").ok());
  EXPECT_FALSE(FaultPlan::Parse("crash=1").ok());
  EXPECT_FALSE(FaultPlan::Parse("drop=2.0").ok());
  EXPECT_FALSE(FaultPlan::Parse("slow=1").ok());
  EXPECT_FALSE(FaultPlan::Parse("bogus=1").ok());
  EXPECT_FALSE(FaultPlan::Parse("ckpt=1.5").ok());
}

TEST(FaultPlanTest, EmptyPlanVariants) {
  EXPECT_TRUE(FaultPlan{}.empty());
  auto parsed = FaultPlan::Parse("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(ClusterFaultTest, EpochTimelineFollowsCrashAndRestart) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  FaultPlan plan;
  plan.crashes.push_back({.machine = 1, .at = 1.0, .restart_after = 0.5});
  cluster.InstallFaultPlan(&plan);

  std::vector<int> epochs;
  std::vector<bool> up;
  for (double t : {0.5, 1.2, 2.0}) {
    sim.Schedule(t, [&] {
      epochs.push_back(cluster.machine_epoch(1));
      up.push_back(cluster.machine_up(1));
    });
  }
  sim.Run();
  EXPECT_EQ(epochs, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(up, (std::vector<bool>{true, false, true}));
  // Unaffected machines never change epoch.
  EXPECT_EQ(cluster.machine_epoch(0), 0);
  EXPECT_TRUE(cluster.machine_up(0));
}

TEST(ClusterFaultTest, MachineUpTimeReportsRestart) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  FaultPlan plan;
  plan.crashes.push_back({.machine = 1, .at = 1.0, .restart_after = 0.5});
  plan.crashes.push_back({.machine = 2, .at = 1.0});  // gone for good
  cluster.InstallFaultPlan(&plan);
  double up1 = 0, up2 = 0;
  sim.Schedule(1.2, [&] {
    up1 = cluster.machine_up_time(1);
    up2 = cluster.machine_up_time(2);
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(up1, 1.5);
  EXPECT_TRUE(std::isinf(up2));
}

TEST(ClusterFaultTest, CrashDropsCpuCompletionButChargesTheWork) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  FaultPlan plan;
  plan.crashes.push_back({.machine = 0, .at = 0.5, .restart_after = 0.1});
  cluster.InstallFaultPlan(&plan);
  bool finished = false;
  cluster.ExecCpu(0, 1.0, [&] { finished = true; });  // would finish at 1.0
  sim.Run();
  EXPECT_FALSE(finished);  // the machine crashed mid-execution
  EXPECT_DOUBLE_EQ(cluster.metrics().cpu_seconds, 1.0);  // wasted, but spent
}

TEST(ClusterFaultTest, WorkIssuedOnDeadMachineIsDropped) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  FaultPlan plan;
  plan.crashes.push_back({.machine = 0, .at = 0.5});
  cluster.InstallFaultPlan(&plan);
  bool finished = false;
  sim.Schedule(1.0, [&] { cluster.ExecCpu(0, 0.1, [&] { finished = true; }); });
  sim.Run();
  EXPECT_FALSE(finished);
  EXPECT_DOUBLE_EQ(cluster.metrics().cpu_seconds, 0.0);  // never started
}

TEST(ClusterFaultTest, CrashDropsInFlightDelivery) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  FaultPlan plan;
  // 1 MB at 1 MB/s arrives at ~1.001s; the receiver dies at 0.5.
  plan.crashes.push_back({.machine = 1, .at = 0.5, .restart_after = 1.0});
  cluster.InstallFaultPlan(&plan);
  bool arrived = false;
  cluster.Send(0, 1, 1'000'000, [&] { arrived = true; });
  sim.Run();
  EXPECT_FALSE(arrived);
}

TEST(ClusterFaultTest, RestartResetsResourceClocks) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  FaultPlan plan;
  plan.crashes.push_back({.machine = 0, .at = 5.0, .restart_after = 1.0});
  cluster.InstallFaultPlan(&plan);
  // Saturate both cores well past the crash...
  cluster.ExecCpu(0, 100.0, [] {});
  cluster.ExecCpu(0, 100.0, [] {});
  // ...then run fresh work after the restart: it must not wait for the
  // pre-crash occupancy (the restarted machine comes back idle).
  double done_at = 0;
  sim.Schedule(7.0, [&] {
    cluster.ExecCpu(0, 1.0, [&] { done_at = sim.now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(done_at, 8.0);
}

TEST(ClusterFaultTest, SlowdownMultipliesCpuTime) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  FaultPlan plan;
  plan.slowdowns.push_back({.machine = 1, .multiplier = 4.0});
  cluster.InstallFaultPlan(&plan);
  double fast = 0, slow = 0;
  cluster.ExecCpu(0, 1.0, [&] { fast = sim.now(); });
  cluster.ExecCpu(1, 1.0, [&] { slow = sim.now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(fast, 1.0);
  EXPECT_DOUBLE_EQ(slow, 4.0);
}

TEST(ClusterFaultTest, CertainDropRetransmitsThenGivesUp) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  FaultPlan plan;
  plan.drop_probability = 1.0;
  plan.max_retransmits = 3;
  cluster.InstallFaultPlan(&plan);
  bool arrived = false;
  cluster.Send(0, 1, 1000, [&] { arrived = true; });
  sim.Run();
  EXPECT_FALSE(arrived);
  // The original try plus 3 retransmits, all dropped.
  EXPECT_EQ(cluster.metrics().dropped_messages, 4);
  EXPECT_EQ(cluster.metrics().messages, 4);
}

TEST(ClusterFaultTest, DropDecisionsAreSeedDeterministic) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    Cluster cluster(&sim, TestConfig());
    FaultPlan plan;
    plan.drop_probability = 0.5;
    plan.drop_seed = seed;
    cluster.InstallFaultPlan(&plan);
    std::vector<double> arrivals;
    for (int i = 0; i < 20; ++i) {
      cluster.Send(0, 1, 1000, [&] { arrivals.push_back(sim.now()); });
    }
    sim.Run();
    return std::make_pair(arrivals, cluster.metrics().dropped_messages);
  };
  auto a = run(17), b = run(17), c = run(99);
  EXPECT_EQ(a, b);           // same seed, same timeline
  EXPECT_GT(a.second, 0);    // p=0.5 over 20 sends: some drops
  EXPECT_NE(a, c);           // a different seed perturbs the timeline
}

TEST(ClusterFaultTest, DroppedMessagesStillArriveViaRetransmit) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  FaultPlan plan;
  plan.drop_probability = 0.5;
  cluster.InstallFaultPlan(&plan);
  int arrived = 0;
  for (int i = 0; i < 20; ++i) {
    cluster.Send(0, 1, 1000, [&] { ++arrived; });
  }
  sim.Run();
  // With max_retransmits=16 every message eventually gets through.
  EXPECT_EQ(arrived, 20);
  EXPECT_GT(cluster.metrics().dropped_messages, 0);
}

TEST(ClusterFaultTest, EmptyPlanInstallIsInert) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  FaultPlan empty;
  cluster.InstallFaultPlan(&empty);
  double arrived = 0;
  cluster.Send(0, 1, 1000, [&] { arrived = sim.now(); });
  sim.Run();
  EXPECT_NEAR(arrived, 0.002, 1e-9);
  EXPECT_EQ(cluster.metrics().dropped_messages, 0);
}

}  // namespace
}  // namespace mitos::sim
