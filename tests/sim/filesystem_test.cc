#include "sim/filesystem.h"

#include <gtest/gtest.h>

namespace mitos::sim {
namespace {

DatumVector Ints(std::initializer_list<int64_t> values) {
  DatumVector out;
  for (int64_t v : values) out.push_back(Datum::Int64(v));
  return out;
}

TEST(PartitionRangeTest, EvenSplit) {
  EXPECT_EQ(PartitionRange(10, 2, 0), (std::pair<size_t, size_t>{0, 5}));
  EXPECT_EQ(PartitionRange(10, 2, 1), (std::pair<size_t, size_t>{5, 10}));
}

TEST(PartitionRangeTest, UnevenSplitFrontLoaded) {
  // 10 elements over 3 parts: 4, 3, 3.
  EXPECT_EQ(PartitionRange(10, 3, 0), (std::pair<size_t, size_t>{0, 4}));
  EXPECT_EQ(PartitionRange(10, 3, 1), (std::pair<size_t, size_t>{4, 7}));
  EXPECT_EQ(PartitionRange(10, 3, 2), (std::pair<size_t, size_t>{7, 10}));
}

TEST(PartitionRangeTest, MorePartsThanElements) {
  EXPECT_EQ(PartitionRange(2, 4, 0), (std::pair<size_t, size_t>{0, 1}));
  EXPECT_EQ(PartitionRange(2, 4, 1), (std::pair<size_t, size_t>{1, 2}));
  EXPECT_EQ(PartitionRange(2, 4, 2), (std::pair<size_t, size_t>{2, 2}));
  EXPECT_EQ(PartitionRange(2, 4, 3), (std::pair<size_t, size_t>{2, 2}));
}

TEST(PartitionRangeTest, CoversAllElementsExactlyOnce) {
  for (size_t n : {0u, 1u, 7u, 100u, 101u}) {
    for (size_t parts : {1u, 2u, 3u, 8u}) {
      size_t expected_begin = 0;
      for (size_t p = 0; p < parts; ++p) {
        auto [begin, end] = PartitionRange(n, parts, p);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(SimFileSystemTest, WriteReadRoundTrip) {
  SimFileSystem fs;
  EXPECT_FALSE(fs.Exists("a"));
  fs.Write("a", Ints({1, 2, 3}));
  EXPECT_TRUE(fs.Exists("a"));
  auto data = fs.Read("a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Ints({1, 2, 3}));
}

TEST(SimFileSystemTest, ReadMissingIsNotFound) {
  SimFileSystem fs;
  auto data = fs.Read("nope");
  EXPECT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kNotFound);
}

TEST(SimFileSystemTest, WriteOverwrites) {
  SimFileSystem fs;
  fs.Write("a", Ints({1, 2, 3}));
  fs.Write("a", Ints({9}));
  EXPECT_EQ(fs.FileElements("a"), 1u);
  EXPECT_EQ(fs.FileBytes("a"), 8u);
}

TEST(SimFileSystemTest, AppendAccumulates) {
  SimFileSystem fs;
  fs.Append("a", Ints({1}));
  fs.Append("a", Ints({2, 3}));
  auto data = fs.Read("a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Ints({1, 2, 3}));
  EXPECT_EQ(fs.FileBytes("a"), 24u);
}

TEST(SimFileSystemTest, ReadPartitionMatchesRange) {
  SimFileSystem fs;
  fs.Write("a", Ints({10, 20, 30, 40, 50}));
  auto part = fs.ReadPartition("a", 2, 1);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(*part, Ints({40, 50}));
}

TEST(SimFileSystemTest, ListFilesSorted) {
  SimFileSystem fs;
  fs.Write("b", {});
  fs.Write("a", {});
  EXPECT_EQ(fs.ListFiles(), (std::vector<std::string>{"a", "b"}));
}

TEST(SimFileSystemTest, FileBytesTracksSerializedSize) {
  SimFileSystem fs;
  fs.Write("s", {Datum::String("abcd")});
  EXPECT_EQ(fs.FileBytes("s"), 8u);
  EXPECT_EQ(fs.FileBytes("missing"), 0u);
}

}  // namespace
}  // namespace mitos::sim
