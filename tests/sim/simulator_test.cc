#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace mitos::sim {
namespace {

TEST(SimulatorTest, ProcessesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsMayScheduleMoreEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(1.0, [&] {
    order.push_back(1);
    sim.ScheduleAfter(0.5, [&] { order.push_back(2); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
}

TEST(SimulatorTest, IdleCallbackRunsAfterQueueDrains) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleWhenIdle([&] { order.push_back(99); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 99}));
}

TEST(SimulatorTest, IdleCallbacksFireOneQuiescenceAtATime) {
  // The second idle callback must wait until everything the first one
  // scheduled has drained — this is the superstep-barrier semantics.
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleWhenIdle([&] {
    order.push_back(1);
    sim.ScheduleAfter(1.0, [&] { order.push_back(2); });
  });
  sim.ScheduleWhenIdle([&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, IdleCallbackMayScheduleIdleCallback) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleWhenIdle([&] {
    order.push_back(1);
    sim.ScheduleWhenIdle([&] { order.push_back(2); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, CountsEventsAndBarriers) {
  Simulator sim;
  sim.Schedule(1.0, [] {});
  sim.Schedule(2.0, [] {});
  sim.ScheduleWhenIdle([] {});
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 2);
  EXPECT_EQ(sim.barriers_fired(), 1);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, RunIsRestartable) {
  // Drivers (the Spark baseline) call Run() once per job; time accumulates.
  Simulator sim;
  sim.Schedule(1.0, [] {});
  EXPECT_DOUBLE_EQ(sim.Run(), 1.0);
  sim.ScheduleAfter(2.0, [] {});
  EXPECT_DOUBLE_EQ(sim.Run(), 3.0);
}

TEST(SimulatorTest, BackgroundEventsDoNotHoldTheBarrier) {
  // Background events (heartbeats, ack-retry timers) run only once all
  // foreground work AND pending idle callbacks are done: a barrier must
  // not wait for a watchdog scheduled far in the future.
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleBackground(10.0, [&] { order.push_back(99); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.ScheduleWhenIdle([&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 99}));
}

TEST(SimulatorTest, BackgroundEventsMayScheduleForegroundWork) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleBackground(1.0, [&] {
    order.push_back(1);
    sim.ScheduleAfter(0.5, [&] { order.push_back(2); });
  });
  sim.ScheduleWhenIdle([&] { order.push_back(3); });
  sim.Run();
  // The barrier fires before the background timer; the foreground work the
  // timer spawns still runs to completion.
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
}

TEST(SimulatorTest, BusyUntilExcludesTrailingBackgroundEvents) {
  // busy_until() is the completion time of real work — a watchdog that
  // fires long after the job drained must not inflate the reported
  // makespan.
  Simulator sim;
  sim.Schedule(2.0, [] {});
  sim.ScheduleBackground(50.0, [] {});
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.now(), 50.0);
  EXPECT_DOUBLE_EQ(sim.busy_until(), 2.0);
}

TEST(SimulatorDeathTest, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.Schedule(5.0, [&] {
    EXPECT_DEATH(sim.Schedule(1.0, [] {}), "Check failed");
  });
  sim.Run();
}

}  // namespace
}  // namespace mitos::sim
