#include "obs/analysis/explain.h"

#include <string>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "json_lint.h"
#include "lang/builder.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::obs::analysis {
namespace {

using obs_testing::JsonLint;

TEST(ExplainTest, ExportsAstSsaAndDataflow) {
  lang::Program program = workloads::KMeansProgram({.iterations = 3});
  auto plan = BuildExplain(program, {.machines = 4});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  EXPECT_FALSE(plan->ast.empty());
  EXPECT_NE(plan->ssa.find("block"), std::string::npos);
  EXPECT_FALSE(plan->graph.nodes.empty());

  std::string dot = plan->ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  // No cost annotations without a profile.
  EXPECT_EQ(dot.find("s cpu"), std::string::npos);
}

TEST(ExplainTest, JsonIsValidAndDeterministic) {
  lang::Program program = workloads::VisitCountProgram({.days = 4});
  auto plan = BuildExplain(program, {.machines = 3});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  std::string json = plan->ToJson();
  std::string error;
  EXPECT_TRUE(JsonLint::IsValid(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"ast\""), std::string::npos);
  EXPECT_NE(json.find("\"ssa\""), std::string::npos);
  EXPECT_NE(json.find("\"dataflow\""), std::string::npos);

  auto again = BuildExplain(program, {.machines = 3});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(json, again->ToJson());
  EXPECT_EQ(plan->ToDot(), again->ToDot());
}

// api::Engine::Explain back-fills measured operator costs from the most
// recent profiled Run().
TEST(ExplainTest, EngineBackfillsProfiledCosts) {
  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 120, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 3});

  api::Engine engine(api::EngineKind::kMitos, {.machines = 4});

  // Before any run: plan only, no costs.
  auto cold = engine.Explain(program);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_TRUE(cold->operator_cpu.empty());

  auto result = engine.Run(program, &fs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto warm = engine.Explain(program);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_FALSE(warm->operator_cpu.empty());
  EXPECT_NE(warm->ToDot().find("s cpu"), std::string::npos);
  // The JSON carries the measured per-node cpu_seconds too.
  EXPECT_NE(warm->ToJson().find("\"cpu_seconds\""), std::string::npos);
}

TEST(ExplainTest, MirrorsEnginePipelineOptions) {
  // A map chain: fusable, so the explained plan must shrink when the
  // engine would fuse (EXPLAIN shows the plan the engine executes).
  lang::ProgramBuilder pb;
  pb.Assign("b", lang::BagLit({Datum::Int64(1), Datum::Int64(2)}));
  pb.Assign("r", lang::Map(lang::Map(lang::Map(lang::Var("b"),
                                               lang::fns::AddInt64(1)),
                                     lang::fns::AddInt64(2)),
                           lang::fns::AddInt64(3)));
  pb.WriteFile(lang::Var("r"), lang::LitString("out"));
  lang::Program program = pb.Build();

  auto plain = BuildExplain(program, {.machines = 4});
  auto fused =
      BuildExplain(program, {.machines = 4, .operator_fusion = true});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(fused.ok());
  EXPECT_LT(fused->graph.nodes.size(), plain->graph.nodes.size());
}

}  // namespace
}  // namespace mitos::obs::analysis
