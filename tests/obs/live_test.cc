// Tests for the live observability plane (obs/live/): the bounded
// streaming EventLog, in-run metrics snapshots, the Prometheus exposition,
// the step-level watchdog — and the plane's core invariant, regression-
// tested here: with every live feature enabled, the run's virtual-time
// behavior (trace, stats) is byte-identical to a run with them all off.
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "common/json.h"
#include "json_lint.h"
#include "obs/live/event_log.h"
#include "obs/live/prom.h"
#include "obs/live/watchdog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::obs::live {
namespace {

using obs_testing::JsonLint;

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(EventLogTest, AppendsOneValidJsonlLinePerRecord) {
  EventLog log;
  log.Append(0.25, "step_end",
             {{"step", 3}, {"value", true}, {"note", "a\"b"}});
  log.Append(0.5, "decision", {{"path_len", 7}});
  log.AppendRaw(0.75, "snapshot", "\"seq\":0,\"counters\":{}");

  EXPECT_EQ(log.appended(), 3);
  EXPECT_EQ(log.dropped(), 0);
  EXPECT_EQ(log.buffered(), 3u);
  EXPECT_EQ(log.CountKind("step_end"), 1);
  EXPECT_EQ(log.CountKind("snapshot"), 1);
  EXPECT_EQ(log.CountKind("absent"), 0);

  std::vector<std::string> lines = SplitLines(log.BufferedToJsonl());
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    std::string error;
    EXPECT_TRUE(JsonLint::IsValid(line, &error)) << error << "\n" << line;
    auto parsed = json::Value::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_TRUE(parsed->Find("vt") != nullptr) << line;
    EXPECT_FALSE(parsed->StringOr("kind", "").empty()) << line;
    // Tests leave the wall clock off: records must be pure functions of
    // virtual time.
    EXPECT_EQ(parsed->Find("wall_ms"), nullptr) << line;
  }
  auto first = json::Value::Parse(lines[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_DOUBLE_EQ(first->NumberOr("vt", -1), 0.25);
  EXPECT_EQ(first->NumberOr("step", -1), 3);
  EXPECT_EQ(first->StringOr("note", ""), "a\"b");
}

TEST(EventLogTest, StampsWallClockWhenWired) {
  EventLog::Options options;
  options.wall_clock_ms = [] { return int64_t{1722345678901}; };
  EventLog log(std::move(options));
  log.Append(1.0, "fault", {{"machine", 2}});
  auto parsed = json::Value::Parse(SplitLines(log.BufferedToJsonl())[0]);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->NumberOr("wall_ms", 0), 1722345678901.0);
}

TEST(EventLogTest, WallClockStampsNeverRunBackwards) {
  EventLog::Options options;
  // A clock that jumps backwards (NTP step, or simply two racing appenders
  // observing the clock out of order): the log clamps under its lock so
  // wall_ms is monotone in record order.
  int64_t reads[] = {100, 250, 180, 300, 40};
  int next = 0;
  options.wall_clock_ms = [&reads, &next] { return reads[next++]; };
  EventLog log(std::move(options));
  for (int i = 0; i < 5; ++i) {
    log.Append(static_cast<double>(i), "tick", {{"i", i}});
  }
  std::vector<std::string> lines = SplitLines(log.BufferedToJsonl());
  ASSERT_EQ(lines.size(), 5u);
  const double expected[] = {100, 250, 250, 300, 300};
  for (size_t i = 0; i < lines.size(); ++i) {
    auto parsed = json::Value::Parse(lines[i]);
    ASSERT_TRUE(parsed.ok());
    EXPECT_DOUBLE_EQ(parsed->NumberOr("wall_ms", -1), expected[i]) << i;
  }
}

TEST(EventLogTest, DropsOldestWhenFullWithoutSink) {
  EventLog::Options options;
  options.max_buffered = 4;
  EventLog log(std::move(options));
  for (int i = 0; i < 10; ++i) {
    log.Append(static_cast<double>(i), "tick", {{"i", i}});
  }
  EXPECT_EQ(log.appended(), 10);
  EXPECT_EQ(log.dropped(), 6);
  EXPECT_EQ(log.buffered(), 4u);
  // Drop-oldest: the survivors are the newest four records.
  std::vector<std::string> lines = SplitLines(log.BufferedToJsonl());
  ASSERT_EQ(lines.size(), 4u);
  auto oldest = json::Value::Parse(lines.front());
  ASSERT_TRUE(oldest.ok());
  EXPECT_EQ(oldest->NumberOr("i", -1), 6);
  // Kind counts survive the drops.
  EXPECT_EQ(log.CountKind("tick"), 10);
}

TEST(EventLogTest, FlushesIncrementallyToSink) {
  std::string out;
  EventLog::Options options;
  options.max_buffered = 4;
  options.sink = [&out](const std::string& text) { out += text; };
  EventLog log(std::move(options));
  for (int i = 0; i < 10; ++i) {
    log.Append(static_cast<double>(i), "tick", {{"i", i}});
  }
  // A full buffer flushed to the sink instead of dropping.
  EXPECT_EQ(log.dropped(), 0);
  EXPECT_GE(SplitLines(out).size(), 6u);
  log.Flush();
  EXPECT_EQ(log.buffered(), 0u);
  std::vector<std::string> lines = SplitLines(out);
  ASSERT_EQ(lines.size(), 10u);
  // Sink output preserves append order.
  for (int i = 0; i < 10; ++i) {
    auto parsed = json::Value::Parse(lines[static_cast<size_t>(i)]);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->NumberOr("i", -1), i);
  }
}

// The tentpole invariant: a run with every live feature enabled (event
// log, step + timer snapshots, watchdog, progress callback) produces a
// byte-identical trace and identical stats to a run with the plane off.
TEST(LivePlaneTest, ZeroPerturbationWithEverythingEnabled) {
  lang::Program program = workloads::KMeansProgram({.iterations = 4});

  // Plain run: trace only.
  sim::SimFileSystem fs_off;
  workloads::GeneratePoints(&fs_off, {.num_points = 120, .num_clusters = 3});
  TraceRecorder trace_off;
  api::RunConfig config_off{.machines = 3};
  config_off.trace = &trace_off;
  auto off = api::Run(api::EngineKind::kMitos, program, &fs_off, config_off);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  // Fully instrumented run.
  sim::SimFileSystem fs_on;
  workloads::GeneratePoints(&fs_on, {.num_points = 120, .num_clusters = 3});
  TraceRecorder trace_on;
  MetricsRegistry metrics;
  EventLog log;
  int progress_calls = 0;
  bool saw_complete = false;
  api::RunConfig config_on{.machines = 3};
  config_on.trace = &trace_on;
  config_on.metrics = &metrics;
  config_on.live.event_log = &log;
  config_on.live.snapshots.enabled = true;
  config_on.live.snapshots.every_virtual_seconds = 0.05;
  config_on.live.watchdog.enabled = true;
  config_on.live.progress = [&](const Progress& p) {
    ++progress_calls;
    saw_complete = saw_complete || p.complete;
  };
  auto on = api::Run(api::EngineKind::kMitos, program, &fs_on, config_on);
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  // Identical virtual-time behavior, byte for byte.
  EXPECT_EQ(trace_off.ToJson(), trace_on.ToJson());
  EXPECT_DOUBLE_EQ(off->stats.total_seconds, on->stats.total_seconds);
  EXPECT_EQ(off->stats.decisions, on->stats.decisions);
  EXPECT_EQ(off->stats.elements, on->stats.elements);

  // And the plane actually ran.
  EXPECT_GT(log.appended(), 0);
  EXPECT_GT(progress_calls, 0);
  EXPECT_TRUE(saw_complete);
}

// Same invariant, now with the wall-clock observability generation in the
// build: a DES run with event log, snapshots, metrics, trace, and a prom
// exposition all enabled stays byte-identical — the trace matches an
// everything-off run (still virtual clock, no wall metadata) and the event
// stream and exposition are reproducible byte for byte across runs.
TEST(LivePlaneTest, DesStaysByteIdenticalWithWallClockObservabilityBuilt) {
  lang::Program program = workloads::KMeansProgram({.iterations = 4});

  // Bare run: trace only, nothing else attached.
  sim::SimFileSystem fs_off;
  workloads::GeneratePoints(&fs_off, {.num_points = 120, .num_clusters = 3});
  TraceRecorder trace_off;
  api::RunConfig config_off{.machines = 3};
  config_off.trace = &trace_off;
  auto off = api::Run(api::EngineKind::kMitos, program, &fs_off, config_off);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  auto run_instrumented = [&program](TraceRecorder* trace,
                                     MetricsRegistry* metrics,
                                     EventLog* log) {
    sim::SimFileSystem fs;
    workloads::GeneratePoints(&fs, {.num_points = 120, .num_clusters = 3});
    api::RunConfig config{.machines = 3};
    config.trace = trace;
    config.metrics = metrics;
    config.live.event_log = log;
    config.live.snapshots.enabled = true;
    auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  };

  TraceRecorder trace_a, trace_b;
  MetricsRegistry metrics_a, metrics_b;
  EventLog log_a, log_b;
  run_instrumented(&trace_a, &metrics_a, &log_a);
  run_instrumented(&trace_b, &metrics_b, &log_b);

  // The DES recorder never flipped to wall mode: its export carries no
  // wall metadata and matches the everything-off run byte for byte.
  EXPECT_EQ(trace_a.clock(), TraceClock::kVirtual);
  EXPECT_EQ(trace_a.ToJson().find("\"clock\":\"wall\""), std::string::npos);
  EXPECT_EQ(trace_off.ToJson(), trace_a.ToJson());
  // Event stream and prom exposition are deterministic across runs.
  ASSERT_GT(log_a.appended(), 0);
  EXPECT_EQ(log_a.BufferedToJsonl(), log_b.BufferedToJsonl());
  const std::string prom_a =
      ToPrometheusText(metrics_a, off->stats.total_seconds);
  EXPECT_EQ(prom_a, ToPrometheusText(metrics_b, off->stats.total_seconds));
  EXPECT_TRUE(ValidatePrometheusText(prom_a).ok());
  // No threads_* families leak into a DES run.
  EXPECT_EQ(prom_a.find("mitos_threads_"), std::string::npos) << prom_a;
}

// End-to-end event stream: kinds, cardinalities, and record shape.
TEST(LivePlaneTest, EmitsStructuredEventStream) {
  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 120, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 4});
  MetricsRegistry metrics;
  EventLog log;
  api::RunConfig config{.machines = 3};
  config.metrics = &metrics;
  config.live.event_log = &log;
  config.live.snapshots.enabled = true;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(log.CountKind("run_begin"), 1);
  EXPECT_EQ(log.CountKind("run_end"), 1);
  EXPECT_EQ(log.CountKind("decision"), result->stats.decisions);
  EXPECT_EQ(log.CountKind("step_end"), result->stats.decisions);
  // One snapshot per step boundary plus the final one.
  EXPECT_EQ(log.CountKind("snapshot"), result->stats.decisions + 1);
  // Fault-free run: no fault/recovery records, no stalls.
  EXPECT_EQ(log.CountKind("fault"), 0);
  EXPECT_EQ(log.CountKind("watchdog_stall"), 0);

  std::map<std::string, int> reasons;
  double last_vt = 0;
  for (const std::string& line : SplitLines(log.BufferedToJsonl())) {
    std::string error;
    ASSERT_TRUE(JsonLint::IsValid(line, &error)) << error << "\n" << line;
    auto parsed = json::Value::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const double vt = parsed->NumberOr("vt", -1);
    EXPECT_GE(vt, last_vt) << "records out of order: " << line;
    last_vt = vt;
    const std::string kind = parsed->StringOr("kind", "");
    if (kind == "decision") {
      EXPECT_NE(parsed->Find("step"), nullptr) << line;
      EXPECT_NE(parsed->Find("path_len"), nullptr) << line;
      EXPECT_NE(parsed->Find("machine"), nullptr) << line;
    } else if (kind == "step_end") {
      EXPECT_NE(parsed->Find("barrier_wait"), nullptr) << line;
      EXPECT_NE(parsed->Find("elements"), nullptr) << line;
    } else if (kind == "snapshot") {
      ++reasons[parsed->StringOr("reason", "")];
      const json::Value* counters = parsed->Find("counters");
      ASSERT_NE(counters, nullptr) << line;
      EXPECT_TRUE(counters->is_object());
      EXPECT_NE(parsed->Find("deltas"), nullptr) << line;
      EXPECT_NE(parsed->Find("histograms"), nullptr) << line;
      EXPECT_NE(parsed->Find("steps"), nullptr) << line;
      EXPECT_NE(parsed->Find("seq"), nullptr) << line;
    }
  }
  EXPECT_GT(reasons["step"], 0);
  EXPECT_EQ(reasons["final"], 1);

  // The final snapshot's counters agree with the registry.
  std::vector<std::string> lines = SplitLines(log.BufferedToJsonl());
  for (auto it = lines.rbegin(); it != lines.rend(); ++it) {
    auto parsed = json::Value::Parse(*it);
    ASSERT_TRUE(parsed.ok());
    if (parsed->StringOr("kind", "") != "snapshot") continue;
    const json::Value* counters = parsed->Find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_DOUBLE_EQ(counters->NumberOr("decisions", -1),
                     static_cast<double>(metrics.counter("decisions")));
    EXPECT_DOUBLE_EQ(
        parsed->NumberOr("steps", -1),
        static_cast<double>(metrics.steps().size()));
    break;
  }
}

TEST(PromTest, ExpositionValidatesAndIsDeterministic) {
  MetricsRegistry metrics;
  metrics.Inc("decisions", 12);
  metrics.Inc("net_bytes", 4096);
  metrics.Set("total_seconds", 1.5);
  metrics.Set("operator_cpu/counts.push", 0.25);
  metrics.Set("operator_cpu/join.probe", 0.75);
  for (int i = 1; i <= 20; ++i) metrics.Observe("barrier_wait", i * 1e-3);

  std::string text = ToPrometheusText(metrics, 2.25);
  Status status = ValidatePrometheusText(text);
  EXPECT_TRUE(status.ok()) << status.ToString() << "\n" << text;
  EXPECT_EQ(text, ToPrometheusText(metrics, 2.25));

  // Naming conventions: mitos_ prefix, counters get _total, histograms
  // export as quantile summaries, family/member gauges fold into labels.
  EXPECT_NE(text.find("mitos_decisions_total 12"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE mitos_barrier_wait summary"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mitos_barrier_wait{quantile=\"0.5\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mitos_barrier_wait_count 20"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mitos_operator_cpu{op=\"counts.push\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mitos_virtual_time_seconds 2.25"), std::string::npos)
      << text;
  // The legacy overload is the DES shape: backend info labels "des" and
  // the wall-time family is present (0) so both backends share one schema.
  EXPECT_NE(text.find("mitos_backend_info{backend=\"des\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mitos_wall_time_seconds 0"), std::string::npos)
      << text;
}

TEST(PromTest, BackendInfoAndMachineLabelsForThreadsRuns) {
  MetricsRegistry metrics;
  metrics.Set("threads_queue_depth_peak/m0", 3);
  metrics.Set("threads_queue_depth_peak/m1", 7);
  metrics.Set("threads_tasks/m0", 120);
  metrics.Set("threads_tasks_total", 240);
  metrics.Set("operator_cpu/counts.push", 0.25);
  for (int i = 1; i <= 5; ++i) {
    metrics.Observe("threads_queue_wait_seconds", i * 1e-4);
  }

  PromRunInfo info;
  info.backend = "threads";
  info.wall_seconds = 0.125;
  std::string text = ToPrometheusText(metrics, info);
  Status status = ValidatePrometheusText(text);
  EXPECT_TRUE(status.ok()) << status.ToString() << "\n" << text;

  EXPECT_NE(text.find("mitos_backend_info{backend=\"threads\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mitos_wall_time_seconds 0.125"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mitos_virtual_time_seconds 0"), std::string::npos)
      << text;
  // Per-machine threads_* gauges label by machine index; operator gauges
  // keep the op label.
  EXPECT_NE(text.find("mitos_threads_queue_depth_peak{machine=\"1\"} 7"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mitos_threads_tasks{machine=\"0\"} 120"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mitos_threads_tasks_total 240"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mitos_operator_cpu{op=\"counts.push\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE mitos_threads_queue_wait_seconds summary"),
            std::string::npos)
      << text;
}

TEST(PromTest, ValidatorRejectsMalformedExposition) {
  // A sample with no preceding # HELP/# TYPE header.
  EXPECT_FALSE(ValidatePrometheusText("mitos_orphan 1\n").ok());
  // Duplicate family declaration.
  EXPECT_FALSE(ValidatePrometheusText("# HELP mitos_a a\n"
                                      "# TYPE mitos_a counter\n"
                                      "mitos_a 1\n"
                                      "# HELP mitos_a a\n"
                                      "# TYPE mitos_a counter\n"
                                      "mitos_a 2\n")
                   .ok());
  // Illegal TYPE value.
  EXPECT_FALSE(ValidatePrometheusText("# HELP mitos_a a\n"
                                      "# TYPE mitos_a widget\n"
                                      "mitos_a 1\n")
                   .ok());
  // Unparseable sample line.
  EXPECT_FALSE(ValidatePrometheusText("# HELP mitos_a a\n"
                                      "# TYPE mitos_a gauge\n"
                                      "mitos_a one\n")
                   .ok());
  // The real exposition of an empty registry still validates.
  MetricsRegistry empty;
  EXPECT_TRUE(ValidatePrometheusText(ToPrometheusText(empty, 0)).ok());
}

// The watchdog fires when a machine degrades mid-run (FaultPlan windowed
// slowdown) and the inter-step gap blows past the rolling-median window.
TEST(WatchdogTest, FiresOnInjectedMidRunSlowdown) {
  // K-means does real per-machine CPU work every iteration, so a straggler
  // drags the superstep barrier (a pure coordination microbenchmark would
  // shrug off a CPU slowdown).
  lang::Program program = workloads::KMeansProgram({.iterations = 10});

  // Probe run: measure the healthy duration so the slowdown window can
  // start mid-run (a slowdown from t=0 would just set a slower cadence
  // for the median to adapt to).
  sim::SimFileSystem fs_probe;
  workloads::GeneratePoints(&fs_probe,
                            {.num_points = 2000, .num_clusters = 3});
  auto probe =
      api::Run(api::EngineKind::kMitos, program, &fs_probe, {.machines = 4});
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const double healthy = probe->stats.total_seconds;
  ASSERT_GT(healthy, 0);

  sim::FaultPlan plan;
  plan.slowdowns.push_back(
      {.machine = 1, .multiplier = 60.0, .from = healthy * 0.5});
  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 2000, .num_clusters = 3});
  EventLog log;
  api::RunConfig config{.machines = 4};
  config.faults = &plan;
  config.live.event_log = &log;
  config.live.watchdog.enabled = true;
  // The default floor (0.5s) is sized for real deployments; this
  // microbenchmark's steps are milliseconds, so drop the floor and let the
  // rolling median carry the threshold.
  config.live.watchdog.min_window_seconds = 0.001;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_GE(log.CountKind("watchdog_stall"), 1) << log.BufferedToJsonl();
  // Backoff: at most max_reports stall records per run.
  EXPECT_LE(log.CountKind("watchdog_stall"),
            config.live.watchdog.max_reports);
  // The stall record carries an actionable diagnosis.
  bool found = false;
  for (const std::string& line : SplitLines(log.BufferedToJsonl())) {
    auto parsed = json::Value::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    if (parsed->StringOr("kind", "") != "watchdog_stall") continue;
    found = true;
    EXPECT_GT(parsed->NumberOr("silent_for", 0), 0) << line;
    EXPECT_GT(parsed->NumberOr("median_gap", 0), 0) << line;
    EXPECT_FALSE(parsed->StringOr("diagnosis", "").empty()) << line;
    break;
  }
  EXPECT_TRUE(found);
}

// One StepWatchdog spans the whole fault-recovery attempt loop; an attempt
// restart must (a) turn checks armed by the discarded attempt inert and
// (b) clear the rolling gap window, so the re-execution's stall threshold
// reflects ITS cadence, not the previous timeline's.
TEST(WatchdogTest, AttemptRestartResetsWindowAndInvalidatesArmedChecks) {
  sim::Simulator sim;
  EventLog log;
  WatchdogConfig cfg;
  cfg.enabled = true;
  cfg.min_window_seconds = 0.001;
  cfg.min_samples = 3;
  cfg.max_reports = 1;
  StepWatchdog wd(&sim, &log, cfg);
  wd.set_quiescent([] { return false; });  // the job never finishes
  wd.set_diagnose([] { return std::string("test probe"); });
  auto at = [&](double t, std::function<void()> fn) {
    sim.ScheduleBackgroundAfter(t, std::move(fn));
  };
  // Attempt 1: 1s cadence. Completing step 2 at t=3 arms an 8s check that
  // fires at t=11 remembering armed_step == 2.
  at(0.5, [&] { wd.OnStepCompleted(0.5, -1); });
  at(1.0, [&] { wd.OnStepCompleted(1.0, 0); });
  at(2.0, [&] { wd.OnStepCompleted(2.0, 1); });
  at(3.0, [&] { wd.OnStepCompleted(3.0, 2); });
  // Recovery restarts the job at t=3.5; the re-execution runs at a SLOWER
  // 2.5s cadence and also ends on step index 2 — so at t=11 the stale
  // attempt-1 check sees a matching step index and a non-quiescent job,
  // and would file a bogus report without the attempt-boundary reset.
  at(3.5, [&] {
    wd.OnAttemptStart();
    wd.OnStepCompleted(3.5, -1);
  });
  at(6.0, [&] { wd.OnStepCompleted(6.0, 0); });
  at(8.5, [&] { wd.OnStepCompleted(8.5, 1); });
  at(10.8, [&] { wd.OnStepCompleted(10.8, 2); });
  sim.Run();
  // Exactly one stall: the genuine one from attempt 2's own window
  // (median 2.5s → armed ~t=30.8), not the stale t=11 check. With the old
  // carried-over window the report would cite attempt 1's 1s median.
  EXPECT_EQ(wd.stalls(), 1);
  ASSERT_EQ(log.CountKind("watchdog_stall"), 1) << log.BufferedToJsonl();
  for (const std::string& line : SplitLines(log.BufferedToJsonl())) {
    auto parsed = json::Value::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    if (parsed->StringOr("kind", "") != "watchdog_stall") continue;
    EXPECT_DOUBLE_EQ(parsed->NumberOr("median_gap", 0), 2.5) << line;
    EXPECT_GT(parsed->NumberOr("vt", 0), 11.0) << line;
  }
}

// End-to-end: a windowed slowdown ("slow=MxF@FROM:UNTIL") that stalls the
// first attempt, then a crash whose long restart forces a full
// re-execution. Every stall report must come from the attempt-1 timeline:
// the attempt boundary discards both the stale armed checks and the
// inflated gap window, so the healthy re-execution stays silent.
TEST(WatchdogTest, RecoveryRestartDoesNotInheritStalls) {
  lang::Program program = workloads::KMeansProgram({.iterations = 10});
  sim::SimFileSystem fs_probe;
  workloads::GeneratePoints(&fs_probe,
                            {.num_points = 2000, .num_clusters = 3});
  auto probe =
      api::Run(api::EngineKind::kMitos, program, &fs_probe, {.machines = 4});
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const double launch = probe->stats.launch_seconds;
  const double compute = probe->stats.total_seconds - launch;
  ASSERT_GT(compute, 0);

  // Slowdown covers the middle of attempt 1's loop; the crash lands after
  // the machine recovers its speed, and the long restart guarantees the
  // failure is declared and the job re-executes from scratch.
  char spec[160];
  std::snprintf(spec, sizeof spec, "slow=1x60@%g:%g; crash=2@%g+0.5",
                launch + 0.2 * compute, launch + 0.45 * compute,
                launch + 0.6 * compute);
  auto plan = sim::FaultPlan::Parse(spec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 2000, .num_clusters = 3});
  EventLog log;
  api::RunConfig config{.machines = 4};
  config.faults = &*plan;
  config.live.event_log = &log;
  config.live.watchdog.enabled = true;
  config.live.watchdog.min_window_seconds = 0.001;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->stats.attempts, 2);

  // Attempt 2 starts at the "recovery" record's virtual time.
  double recovery_vt = -1;
  std::vector<double> stall_vts;
  for (const std::string& line : SplitLines(log.BufferedToJsonl())) {
    auto parsed = json::Value::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const std::string kind = parsed->StringOr("kind", "");
    if (kind == "recovery" && recovery_vt < 0) {
      recovery_vt = parsed->NumberOr("vt", -1);
    } else if (kind == "watchdog_stall") {
      stall_vts.push_back(parsed->NumberOr("vt", 1e18));
    }
  }
  ASSERT_GT(recovery_vt, 0) << log.BufferedToJsonl();
  // The slowdown (and the machine-down wait) stall attempt 1...
  ASSERT_GE(stall_vts.size(), 1u) << log.BufferedToJsonl();
  // ...within the per-RUN report budget (it spans both attempts)...
  EXPECT_LE(stall_vts.size(),
            static_cast<size_t>(config.live.watchdog.max_reports));
  // ...and none leak past the attempt boundary into the re-execution.
  for (double vt : stall_vts) EXPECT_LE(vt, recovery_vt);
}

// At default thresholds the watchdog stays silent across the benchmark
// workloads (the fig7/8/9 program shapes) — no false positives.
TEST(WatchdogTest, SilentAtDefaultThresholdsOnBenchWorkloads) {
  struct Workload {
    const char* name;
    lang::Program program;
    bool visits;
    bool page_types;
  };
  const std::vector<Workload> cases = {
      // Fig. 7: step-overhead microbenchmark.
      {"fig7", workloads::StepOverheadProgram(30), false, false},
      // Fig. 9: visit-count loop with per-day diffs.
      {"fig9", workloads::VisitCountProgram({.days = 20}), true, false},
      // Fig. 8: same loop joining the loop-invariant pageTypes dataset.
      {"fig8",
       workloads::VisitCountProgram({.days = 20, .with_page_types = true}),
       true, true},
  };
  for (const Workload& w : cases) {
    sim::SimFileSystem fs;
    if (w.visits) {
      workloads::GenerateVisitLogs(&fs,
                                   {.days = 20, .entries_per_day = 2000});
    }
    if (w.page_types) workloads::GeneratePageTypes(&fs, {});
    EventLog log;
    api::RunConfig config{.machines = 4};
    config.live.event_log = &log;
    config.live.watchdog.enabled = true;  // default thresholds
    auto result = api::Run(api::EngineKind::kMitos, w.program, &fs, config);
    ASSERT_TRUE(result.ok()) << w.name << ": " << result.status().ToString();
    EXPECT_EQ(log.CountKind("watchdog_stall"), 0)
        << w.name << ":\n"
        << log.BufferedToJsonl();
  }
}

// Fault runs land fault/recovery/checkpoint records in the log, and the
// stream stays valid JSONL throughout.
TEST(LivePlaneTest, FaultRunEmitsRecoveryRecords) {
  auto plan = sim::FaultPlan::Parse("crash=1@0.2+0.1; ckpt=5");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 120, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 6});
  MetricsRegistry metrics;
  EventLog log;
  api::RunConfig config{.machines = 3};
  config.faults = &*plan;
  config.metrics = &metrics;
  config.live.event_log = &log;
  config.live.snapshots.enabled = true;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_GT(log.CountKind("fault"), 0);
  EXPECT_GT(log.CountKind("checkpoint"), 0);
  EXPECT_EQ(log.CountKind("recovery"), result->stats.attempts - 1);
  for (const std::string& line : SplitLines(log.BufferedToJsonl())) {
    std::string error;
    EXPECT_TRUE(JsonLint::IsValid(line, &error)) << error << "\n" << line;
  }
}

}  // namespace
}  // namespace mitos::obs::live
