// Trace export under fault injection: crashes, recovery attempts, and
// checkpoints must show up as events in the exported trace, and the traced
// faulty run must stay byte-deterministic (the same invariant fault-free
// runs already guarantee).
#include <string>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "json_lint.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::obs {
namespace {

using obs_testing::JsonLint;

struct TracedRun {
  double total_seconds = 0;
  int attempts = 0;
  int checkpoints = 0;
  std::string trace_json;
};

StatusOr<TracedRun> RunKMeansTraced(const sim::FaultPlan* plan) {
  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 2000, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 4});
  TraceRecorder trace;
  api::RunConfig config;
  config.machines = 4;
  config.trace = &trace;
  config.faults = plan;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
  MITOS_RETURN_IF_ERROR(result.status());
  TracedRun run;
  run.total_seconds = result->stats.total_seconds;
  run.attempts = result->stats.attempts;
  run.checkpoints = result->stats.checkpoints;
  run.trace_json = trace.ToJson();
  return run;
}

// Mid-compute crash time, measured from a fault-free run (see
// tests/runtime/recovery_test.cc for the rationale).
sim::FaultPlan CrashPlan(int checkpoint_every = 0) {
  static const double crash_at = [] {
    sim::SimFileSystem fs;
    workloads::GeneratePoints(&fs, {.num_points = 2000, .num_clusters = 3});
    lang::Program program = workloads::KMeansProgram({.iterations = 4});
    auto result = api::Run(api::EngineKind::kMitos, program, &fs,
                           {.machines = 4});
    MITOS_CHECK(result.ok());
    return result->stats.launch_seconds +
           0.5 * (result->stats.total_seconds -
                  result->stats.launch_seconds);
  }();
  sim::FaultPlan plan;
  plan.crashes.push_back(
      {.machine = 1, .at = crash_at, .restart_after = 0.5});
  plan.checkpoint_every = checkpoint_every;
  return plan;
}

TEST(TraceFaultTest, RecoveryEventsAppearInExport) {
  sim::FaultPlan plan = CrashPlan();
  auto run = RunKMeansTraced(&plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_GE(run->attempts, 2);

  std::string error;
  EXPECT_TRUE(JsonLint::IsValid(run->trace_json, &error)) << error;
  // The injected failure timeline and the engine's reaction are all there.
  EXPECT_NE(run->trace_json.find("\"crash\""), std::string::npos);
  EXPECT_NE(run->trace_json.find("\"restart\""), std::string::npos);
  EXPECT_NE(run->trace_json.find("\"recovery-start\""), std::string::npos);
  EXPECT_NE(run->trace_json.find("\"fault\""), std::string::npos);
}

TEST(TraceFaultTest, CheckpointEventsAppearInExport) {
  sim::FaultPlan plan = CrashPlan(/*checkpoint_every=*/2);
  auto run = RunKMeansTraced(&plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_GT(run->checkpoints, 0);
  EXPECT_NE(run->trace_json.find("\"checkpoint\""), std::string::npos);
}

TEST(TraceFaultTest, TracedFaultyRunIsByteDeterministic) {
  sim::FaultPlan plan = CrashPlan(/*checkpoint_every=*/2);
  plan.drop_probability = 0.01;
  auto first = RunKMeansTraced(&plan);
  auto second = RunKMeansTraced(&plan);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->total_seconds, second->total_seconds);
  EXPECT_EQ(first->trace_json, second->trace_json);  // byte-identical
}

TEST(TraceFaultTest, TracingLeavesFaultyTimelineUnchanged) {
  sim::FaultPlan plan = CrashPlan();
  auto traced = RunKMeansTraced(&plan);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();

  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 2000, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 4});
  api::RunConfig config;
  config.machines = 4;
  config.faults = &plan;
  auto plain = api::Run(api::EngineKind::kMitos, program, &fs, config);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->stats.total_seconds, traced->total_seconds);
}

}  // namespace
}  // namespace mitos::obs
