#include "obs/analysis/baseline.h"

#include <string>

#include <gtest/gtest.h>

#include "json_lint.h"

namespace mitos::obs::analysis {
namespace {

using obs_testing::JsonLint;

BaselineFile MakeBaseline() {
  BaselineFile file;
  file.figure = "fig9";
  BaselineEntry a;
  a.key = "fig9/0/Mitos (not pipelined)/4m";
  a.engine = "Mitos (not pipelined)";
  a.machines = 4;
  a.total_seconds = 162.581409;
  a.decomposition = {{"compute", 162.25899}, {"barrier-wait", 0.0394}};
  BaselineEntry b;
  b.key = "fig9/1/Mitos/4m";
  b.engine = "Mitos";
  b.machines = 4;
  b.total_seconds = 97.430815;
  b.decomposition = {{"compute", 97.16973}, {"launch", 0.26}};
  file.entries = {a, b};
  return file;
}

TEST(BaselineTest, JsonRoundTripIsLossless) {
  BaselineFile file = MakeBaseline();
  std::string json = file.ToJson();
  std::string error;
  ASSERT_TRUE(JsonLint::IsValid(json, &error)) << error << "\n" << json;

  auto parsed = BaselineFile::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->figure, "fig9");
  ASSERT_EQ(parsed->entries.size(), 2u);
  EXPECT_EQ(parsed->entries[0].key, file.entries[0].key);
  EXPECT_EQ(parsed->entries[0].engine, file.entries[0].engine);
  EXPECT_EQ(parsed->entries[0].machines, 4);
  EXPECT_DOUBLE_EQ(parsed->entries[0].total_seconds, 162.581409);
  EXPECT_DOUBLE_EQ(parsed->entries[0].decomposition.at("barrier-wait"),
                   0.0394);
  // Re-serialization is byte-identical (the committed-baseline property).
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST(BaselineTest, ParseExpandsWallclockOnOffEntries) {
  // The shape bench/micro_threads_wallclock.cc writes: one templates-off
  // and one templates-on wall-clock measurement per entry.
  const std::string json =
      "{\"schema\":1,\"figure\":\"threads_wallclock\",\"entries\":["
      "{\"key\":\"fig7/m4/s400\",\"machines\":4,"
      "\"off_seconds\":0.0135,\"on_seconds\":0.0123,"
      "\"template_hits\":1990,\"template_misses\":17}]}";
  auto parsed = BaselineFile::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->entries.size(), 2u);
  EXPECT_EQ(parsed->entries[0].key, "fig7/m4/s400/off");
  EXPECT_DOUBLE_EQ(parsed->entries[0].total_seconds, 0.0135);
  EXPECT_EQ(parsed->entries[1].key, "fig7/m4/s400/on");
  EXPECT_DOUBLE_EQ(parsed->entries[1].total_seconds, 0.0123);
  EXPECT_EQ(parsed->entries[0].machines, 4);

  // Self-comparison of the expanded entries is clean.
  BaselineDiff diff = Compare(*parsed, *parsed, 0.5);
  EXPECT_FALSE(diff.failed());
  EXPECT_EQ(diff.rows.size(), 2u);
}

TEST(BaselineTest, ParseRejectsGarbage) {
  EXPECT_FALSE(BaselineFile::Parse("not json").ok());
  EXPECT_FALSE(BaselineFile::Parse("[1,2,3]").ok());
  EXPECT_FALSE(BaselineFile::Load("/nonexistent/BENCH_x.json").ok());
}

TEST(BaselineTest, CompareFlagsRegressionBeyondThreshold) {
  BaselineFile base = MakeBaseline();
  BaselineFile current = base;
  // Inject a 15% virtual-time regression into the second run.
  current.entries[1].total_seconds *= 1.15;

  BaselineDiff diff = Compare(base, current, 0.10);
  EXPECT_TRUE(diff.failed());
  EXPECT_EQ(diff.regressions, 1);
  ASSERT_EQ(diff.rows.size(), 2u);
  EXPECT_FALSE(diff.rows[0].regression);
  EXPECT_TRUE(diff.rows[1].regression);
  EXPECT_NEAR(diff.rows[1].ratio, 1.15, 1e-9);
  EXPECT_NE(diff.ToString().find("REGRESSED"), std::string::npos);
}

TEST(BaselineTest, CompareToleratesChangesBelowThreshold) {
  BaselineFile base = MakeBaseline();
  BaselineFile current = base;
  current.entries[0].total_seconds *= 1.05;  // +5% < 10% threshold
  current.entries[1].total_seconds *= 0.97;

  BaselineDiff diff = Compare(base, current, 0.10);
  EXPECT_FALSE(diff.failed());
  EXPECT_EQ(diff.regressions, 0);
  EXPECT_EQ(diff.improvements, 0);
}

TEST(BaselineTest, CompareCountsImprovementsAndMembershipChanges) {
  BaselineFile base = MakeBaseline();
  BaselineFile current = base;
  current.entries[1].total_seconds *= 0.5;  // big improvement
  BaselineEntry extra;
  extra.key = "fig9/2/Mitos/8m";
  extra.total_seconds = 50;
  current.entries.push_back(extra);

  BaselineDiff diff = Compare(base, current, 0.10);
  EXPECT_FALSE(diff.failed());
  EXPECT_EQ(diff.improvements, 1);
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0], "fig9/2/Mitos/8m");

  // A run that disappears from the bench is a failure.
  BaselineFile shrunk = base;
  shrunk.entries.pop_back();
  BaselineDiff missing = Compare(base, shrunk, 0.10);
  EXPECT_TRUE(missing.failed());
  ASSERT_EQ(missing.missing.size(), 1u);
  EXPECT_EQ(missing.missing[0], "fig9/1/Mitos/4m");
}

}  // namespace
}  // namespace mitos::obs::analysis
