// Minimal strict JSON validator for observability tests: enough grammar to
// catch unbalanced braces, missing commas, bad escapes, and malformed
// numbers in the exported trace/metrics documents without pulling in a
// JSON library dependency.
#ifndef MITOS_TESTS_OBS_JSON_LINT_H_
#define MITOS_TESTS_OBS_JSON_LINT_H_

#include <cctype>
#include <cstddef>
#include <string>

namespace mitos::obs_testing {

class JsonLint {
 public:
  // Returns true when `text` is one complete, well-formed JSON value.
  // On failure `error` (if given) receives a message with a byte offset.
  static bool IsValid(const std::string& text, std::string* error = nullptr) {
    JsonLint lint(text);
    bool ok = lint.Value() && (lint.SkipSpace(), lint.pos_ == text.size());
    if (!ok && error != nullptr) {
      *error = "invalid JSON near byte " + std::to_string(lint.pos_);
    }
    return ok;
  }

 private:
  explicit JsonLint(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace((unsigned char)text_[pos_])) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) { ++pos_; return true; }
    return false;
  }
  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if ((unsigned char)c < 0x20) return false;  // raw control character
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (pos_ >= text_.size() ||
                !std::isxdigit((unsigned char)text_[pos_])) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit((unsigned char)text_[pos_])) {
      return false;
    }
    while (pos_ < text_.size() && std::isdigit((unsigned char)text_[pos_])) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit((unsigned char)text_[pos_])) {
        return false;
      }
      while (pos_ < text_.size() && std::isdigit((unsigned char)text_[pos_])) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit((unsigned char)text_[pos_])) {
        return false;
      }
      while (pos_ < text_.size() && std::isdigit((unsigned char)text_[pos_])) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    if (!Eat('{')) return false;
    if (Eat('}')) return true;
    do {
      SkipSpace();
      if (!String() || !Eat(':') || !Value()) return false;
    } while (Eat(','));
    return Eat('}');
  }

  bool Array() {
    if (!Eat('[')) return false;
    if (Eat(']')) return true;
    do {
      if (!Value()) return false;
    } while (Eat(','));
    return Eat(']');
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace mitos::obs_testing

#endif  // MITOS_TESTS_OBS_JSON_LINT_H_
