#include "obs/metrics.h"

#include <string>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "json_lint.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::obs {
namespace {

using obs_testing::JsonLint;

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry metrics;
  metrics.Inc("bags");
  metrics.Inc("bags", 4);
  metrics.Set("total_seconds", 12.5);
  metrics.Observe("lat", 0.5);
  metrics.Observe("lat", 1.5);

  EXPECT_EQ(metrics.counter("bags"), 5);
  EXPECT_EQ(metrics.counter("missing"), 0);
  EXPECT_DOUBLE_EQ(metrics.gauge("total_seconds"), 12.5);
  const HistogramData* lat = metrics.histogram("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2);
  EXPECT_DOUBLE_EQ(lat->sum, 2.0);
  EXPECT_DOUBLE_EQ(lat->min, 0.5);
  EXPECT_DOUBLE_EQ(lat->max, 1.5);
  EXPECT_DOUBLE_EQ(lat->mean(), 1.0);
  EXPECT_EQ(metrics.histogram("missing"), nullptr);
}

TEST(MetricsRegistryTest, HistogramQuantiles) {
  MetricsRegistry metrics;
  for (int i = 1; i <= 100; ++i) metrics.Observe("lat", i);
  const HistogramData* lat = metrics.histogram("lat");
  ASSERT_NE(lat, nullptr);

  // Bucketed estimates: exact rank is interpolated inside doubling
  // buckets, so allow the covering bucket's width.
  EXPECT_GE(lat->p50(), 25.0);
  EXPECT_LE(lat->p50(), 75.0);
  EXPECT_GE(lat->p95(), 75.0);
  EXPECT_LE(lat->p99(), 100.0);
  // Quantiles are monotone and clamped to the observed range.
  EXPECT_LE(lat->p50(), lat->p95());
  EXPECT_LE(lat->p95(), lat->p99());
  EXPECT_GE(lat->Quantile(0.0), lat->min);
  EXPECT_LE(lat->Quantile(1.0), lat->max);

  // Degenerate cases: constant stream and empty histogram.
  MetricsRegistry single;
  for (int i = 0; i < 10; ++i) single.Observe("s", 3.25);
  const HistogramData* s = single.histogram("s");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->p50(), 3.25);
  EXPECT_DOUBLE_EQ(s->p99(), 3.25);
  HistogramData empty;
  EXPECT_DOUBLE_EQ(empty.p50(), 0.0);

  // The summary fields ride along in the JSON export.
  std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistryTest, JsonIsWellFormedAndDeterministic) {
  MetricsRegistry metrics;
  metrics.Inc("a\"quoted\"");
  metrics.Set("g", -1.25e-3);
  metrics.Observe("h", 1e-12);  // below the first bucket bound
  metrics.Observe("h", 1e12);   // beyond the last bound (catch-all)
  StepRecord step;
  step.index = 0;
  step.block = 2;
  step.value = true;
  step.path_len = 3;
  step.barrier_wait = 0.031;
  step.elements = 100;
  metrics.AddStep(step);

  std::string error;
  std::string json = metrics.ToJson();
  EXPECT_TRUE(JsonLint::IsValid(json, &error)) << error << "\n" << json;
  EXPECT_EQ(json, metrics.ToJson());  // stable across exports
}

TEST(MetricsRegistryTest, StepTableListsEveryStep) {
  MetricsRegistry metrics;
  for (int i = 0; i < 3; ++i) {
    StepRecord step;
    step.index = i;
    step.path_len = i + 1;
    metrics.AddStep(step);
  }
  std::string table = metrics.StepTableToString();
  // Header plus one row per step.
  int lines = 0;
  for (char c : table) lines += c == '\n';
  EXPECT_GE(lines, 4) << table;
}

// End-to-end: a Mitos k-means run populates the registry with job, bag and
// step data consistent with RunStats.
TEST(MetricsEndToEndTest, KMeansPopulatesRegistry) {
  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 120, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 4});
  MetricsRegistry metrics;
  api::RunConfig config{.machines = 3};
  config.metrics = &metrics;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(metrics.counter("jobs"), result->stats.jobs);
  EXPECT_EQ(metrics.counter("bags"), result->stats.bags);
  EXPECT_EQ(metrics.counter("elements"), result->stats.elements);
  EXPECT_EQ(metrics.counter("decisions"), result->stats.decisions);
  EXPECT_DOUBLE_EQ(metrics.gauge("total_seconds"),
                   result->stats.total_seconds);
  ASSERT_EQ(static_cast<int>(metrics.steps().size()),
            result->stats.decisions);
  int64_t step_elements = 0;
  for (const StepRecord& step : metrics.steps()) {
    EXPECT_GE(step.barrier_wait, 0) << "step " << step.index;
    EXPECT_GE(step.broadcast_time, step.decision_time);
    step_elements += step.elements;
  }
  EXPECT_GT(step_elements, 0);
  EXPECT_LE(step_elements, result->stats.elements);

  std::string error;
  EXPECT_TRUE(JsonLint::IsValid(metrics.ToJson(), &error)) << error;
}

}  // namespace
}  // namespace mitos::obs
