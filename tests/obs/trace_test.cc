#include "obs/trace.h"

#include <cstring>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "json_lint.h"
#include "obs/metrics.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::obs {
namespace {

using obs_testing::JsonLint;

TEST(TraceRecorderTest, LanesAreStablePerProcess) {
  TraceRecorder trace;
  int cpu0 = trace.Lane(MachinePid(0), "cpu0");
  int nic = trace.Lane(MachinePid(0), "nic-out");
  EXPECT_NE(cpu0, nic);
  // Re-registering returns the same tid.
  EXPECT_EQ(cpu0, trace.Lane(MachinePid(0), "cpu0"));
  // Lane numbering is per process: another machine starts over.
  EXPECT_EQ(cpu0, trace.Lane(MachinePid(1), "cpu0"));
}

TEST(TraceRecorderTest, SpanNestingIsPreserved) {
  TraceRecorder trace;
  int lane = trace.Lane(kEnginePid, "run");
  trace.Span(kEnginePid, lane, "outer", "run", 0.0, 10.0);
  trace.Span(kEnginePid, lane, "inner", "operator", 2.0, 5.0);

  ASSERT_EQ(trace.events().size(), 2u);
  const TraceEvent& outer = trace.events()[0];
  const TraceEvent& inner = trace.events()[1];
  EXPECT_EQ(outer.phase, 'X');
  EXPECT_EQ(inner.phase, 'X');
  // The inner span lies strictly within the outer one on the same lane —
  // the containment the trace viewer uses to draw nesting.
  EXPECT_EQ(outer.tid, inner.tid);
  EXPECT_LE(outer.ts, inner.ts);
  EXPECT_GE(outer.ts + outer.dur, inner.ts + inner.dur);

  // Exported timestamps are microseconds.
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"ts\":2000000.000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":3000000.000"), std::string::npos) << json;
}

TEST(TraceRecorderTest, JsonIsWellFormedWithAwkwardArguments) {
  TraceRecorder trace;
  trace.SetProcessName(kEnginePid, "engine");
  int lane = trace.Lane(kEnginePid, "weird \"lane\"\n\\name");
  trace.Span(kEnginePid, lane, "span \"quoted\" \\ name", "sim", 0.5, 1.25,
             {{"str", "tab\there"},
              {"int", int64_t{-42}},
              {"dbl", 3.14159},
              {"flag", true}});
  trace.Instant(kEnginePid, lane, "marker", "control-flow", 2.0);
  trace.Counter(kEnginePid, "buffered_bytes", 2.5, 1e9);

  std::string error;
  std::string json = trace.ToJson();
  EXPECT_TRUE(JsonLint::IsValid(json, &error)) << error << "\n" << json;
  // Instants carry thread scope, counters the 'C' phase.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceRecorderTest, CountEventsFilters) {
  TraceRecorder trace;
  int lane = trace.Lane(kEnginePid, "l");
  trace.Span(kEnginePid, lane, "a", "operator", 0, 1);
  trace.Span(kEnginePid, lane, "b", "sim", 0, 1);
  trace.Instant(kEnginePid, lane, "c", "control-flow", 1);
  EXPECT_EQ(trace.CountEvents('X', "operator"), 1);
  EXPECT_EQ(trace.CountEvents('X', nullptr), 2);
  EXPECT_EQ(trace.CountEvents(0, "control-flow"), 1);
  EXPECT_EQ(trace.CountEvents(0, nullptr), 3);
}

// End-to-end: k-means on the Mitos engine produces operator spans on every
// machine and exactly one decision instant per control-flow decision.
TEST(TraceEndToEndTest, KMeansMitosEmitsSpansAndDecisions) {
  constexpr int kMachines = 3;
  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 120, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 4});

  TraceRecorder trace;
  MetricsRegistry metrics;
  api::RunConfig config{.machines = kMachines};
  config.trace = &trace;
  config.metrics = &metrics;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Operator (per-bag) spans on every machine.
  std::map<int, int64_t> operator_spans_by_pid;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase == 'X' && std::strcmp(e.cat, "operator") == 0) {
      ++operator_spans_by_pid[e.pid];
    }
  }
  for (int m = 0; m < kMachines; ++m) {
    EXPECT_GT(operator_spans_by_pid[MachinePid(m)], 0)
        << "no operator spans on machine " << m;
  }

  // One decision instant per control-flow decision.
  EXPECT_EQ(trace.CountEvents('i', "control-flow"),
            result->stats.decisions);
  EXPECT_GT(result->stats.decisions, 0);

  // The run span covers the whole run; the export is valid JSON.
  EXPECT_EQ(trace.CountEvents('X', "run"), 1);
  std::string error;
  EXPECT_TRUE(JsonLint::IsValid(trace.ToJson(), &error)) << error;

  // The per-step timeline matches the decision count.
  EXPECT_EQ(static_cast<int>(metrics.steps().size()),
            result->stats.decisions);
  EXPECT_EQ(metrics.counter("decisions"), result->stats.decisions);
}

// Two identical runs export byte-identical JSON (the determinism
// regression test promised in obs/trace.h).
TEST(TraceEndToEndTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [](std::string* json) {
    sim::SimFileSystem fs;
    workloads::GeneratePoints(&fs, {.num_points = 120, .num_clusters = 3});
    lang::Program program = workloads::KMeansProgram({.iterations = 4});
    TraceRecorder trace;
    api::RunConfig config{.machines = 3};
    config.trace = &trace;
    auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_GT(trace.events().size(), 0u);
    *json = trace.ToJson();
  };
  std::string first, second;
  run_once(&first);
  run_once(&second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// Recording is observational: attaching a recorder must not change the
// simulated run at all.
TEST(TraceEndToEndTest, TracingDoesNotPerturbTheRun) {
  auto run = [](bool traced, double* total_seconds) {
    sim::SimFileSystem fs;
    workloads::GeneratePoints(&fs, {.num_points = 120, .num_clusters = 3});
    lang::Program program = workloads::KMeansProgram({.iterations = 4});
    TraceRecorder trace;
    api::RunConfig config{.machines = 3};
    if (traced) config.trace = &trace;
    auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    *total_seconds = result->stats.total_seconds;
  };
  double with_trace = 0, without_trace = 0;
  run(true, &with_trace);
  run(false, &without_trace);
  EXPECT_EQ(with_trace, without_trace);
}

// Baselines share the cluster-attached recorder: a Spark run still yields
// resource spans and valid JSON even though the driver builds its own
// executors internally.
TEST(TraceEndToEndTest, SparkBaselineProducesTrace) {
  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 60, .num_clusters = 2});
  lang::Program program = workloads::KMeansProgram({.iterations = 2});
  TraceRecorder trace;
  api::RunConfig config{.machines = 2};
  config.trace = &trace;
  auto result = api::Run(api::EngineKind::kSpark, program, &fs, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(trace.CountEvents('X', "operator"), 0);
  EXPECT_GT(trace.CountEvents('X', "job"), 1);  // one job per action
  std::string error;
  EXPECT_TRUE(JsonLint::IsValid(trace.ToJson(), &error)) << error;
}

}  // namespace
}  // namespace mitos::obs
