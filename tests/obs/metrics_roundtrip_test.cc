// Round-trip of the metrics JSON export through common/json.h: everything
// MetricsRegistry::ToJson writes — schema version, counters, histogram
// summaries (p50/p95/p99), and the per-step timeline — parses back to the
// in-memory values, for fault-free and faulted runs alike. This is the
// consumer-side contract behind `mitos_run --metrics-out` and the
// "schema":1 version stamp.
#include <algorithm>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "common/json.h"
#include "obs/metrics.h"
#include "sim/fault.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::obs {
namespace {

// The export writes doubles with %.9g (9 significant digits), so a parsed
// value matches the in-memory one to relative 1e-8.
void ExpectNear9(double parsed, double expected, const std::string& what) {
  EXPECT_NEAR(parsed, expected, std::max(1e-12, std::abs(expected) * 1e-8))
      << what;
}

// Parses `metrics.ToJson()` and cross-checks every section against the
// registry and the run's stats.
void CheckRoundTrip(const MetricsRegistry& metrics,
                    const runtime::RunStats& stats) {
  auto parsed = json::Value::Parse(metrics.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());

  // The export shape is versioned.
  EXPECT_DOUBLE_EQ(parsed->NumberOr("schema", -1), 1.0);

  const json::Value* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  ASSERT_EQ(counters->object().size(), metrics.counters().size());
  for (const auto& [name, value] : metrics.counters()) {
    EXPECT_DOUBLE_EQ(counters->NumberOr(name, -1),
                     static_cast<double>(value))
        << name;
  }
  // Counters accumulate across recovery attempts, so they are bounded
  // below by the final successful attempt's stats.
  EXPECT_GE(counters->NumberOr("decisions", -1),
            static_cast<double>(stats.decisions));
  EXPECT_GE(counters->NumberOr("elements", -1),
            static_cast<double>(stats.elements));

  const json::Value* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  for (const auto& [name, value] : metrics.gauges()) {
    ExpectNear9(gauges->NumberOr(name, value - 1), value, name);
  }

  const json::Value* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_TRUE(histograms->is_object());
  ASSERT_EQ(histograms->object().size(), metrics.histograms().size());
  for (const auto& [name, h] : metrics.histograms()) {
    const json::Value* exported = histograms->Find(name);
    ASSERT_NE(exported, nullptr) << name;
    EXPECT_DOUBLE_EQ(exported->NumberOr("count", -1),
                     static_cast<double>(h.count))
        << name;
    ExpectNear9(exported->NumberOr("p50", -1), h.p50(), name);
    ExpectNear9(exported->NumberOr("p95", -1), h.p95(), name);
    ExpectNear9(exported->NumberOr("p99", -1), h.p99(), name);
    // Summary sanity: quantiles are monotone within [min, max].
    EXPECT_LE(exported->NumberOr("p50", 0), exported->NumberOr("p95", 0))
        << name;
    EXPECT_LE(exported->NumberOr("p95", 0), exported->NumberOr("p99", 0))
        << name;
    EXPECT_GE(exported->NumberOr("p50", 0), exported->NumberOr("min", 1))
        << name;
    EXPECT_LE(exported->NumberOr("p99", 0), exported->NumberOr("max", -1))
        << name;
  }

  // Per-step timeline: one record per control-flow decision, faithful to
  // the in-memory StepRecords.
  const json::Value* steps = parsed->Find("steps");
  ASSERT_NE(steps, nullptr);
  ASSERT_TRUE(steps->is_array());
  ASSERT_EQ(steps->array().size(), metrics.steps().size());
  for (size_t i = 0; i < metrics.steps().size(); ++i) {
    const StepRecord& step = metrics.steps()[i];
    const json::Value& exported = steps->array()[i];
    EXPECT_DOUBLE_EQ(exported.NumberOr("index", -1),
                     static_cast<double>(step.index));
    EXPECT_DOUBLE_EQ(exported.NumberOr("path_len", -1),
                     static_cast<double>(step.path_len));
    ExpectNear9(exported.NumberOr("barrier_wait", -1), step.barrier_wait,
                "barrier_wait");
    EXPECT_DOUBLE_EQ(exported.NumberOr("elements", -1),
                     static_cast<double>(step.elements));
    const json::Value* value = exported.Find("value");
    ASSERT_NE(value, nullptr);
    ASSERT_TRUE(value->is_bool());
    EXPECT_EQ(value->boolean(), step.value);
  }
}

TEST(MetricsRoundTripTest, FaultFreeRun) {
  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 120, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 4});
  MetricsRegistry metrics;
  api::RunConfig config{.machines = 3};
  config.metrics = &metrics;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->stats.decisions, 0);
  CheckRoundTrip(metrics, result->stats);
}

TEST(MetricsRoundTripTest, FaultedRun) {
  auto plan = sim::FaultPlan::Parse("crash=1@0.2+0.1; ckpt=5");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 120, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 6});
  MetricsRegistry metrics;
  api::RunConfig config{.machines = 3};
  config.metrics = &metrics;
  config.faults = &*plan;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The crash forced at least one recovery; the timeline and counters
  // still round-trip exactly.
  ASSERT_GT(result->stats.attempts, 1);
  CheckRoundTrip(metrics, result->stats);
}

}  // namespace
}  // namespace mitos::obs
