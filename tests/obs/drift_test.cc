// Wall-clock observability of the threads backend and the DES-vs-real
// drift analyzer (DESIGN.md §12): the threads backend emits per-worker
// wall-clock spans and queue metrics, the critical-path analyzer
// decomposes those traces, and BuildDriftReport correlates a virtual-time
// run with a wall-clock run of the same program.
#include "obs/analysis/drift.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "common/json.h"
#include "obs/analysis/analysis.h"
#include "obs/live/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::obs::analysis {
namespace {

struct InstrumentedRun {
  TraceRecorder trace;
  MetricsRegistry metrics;
  runtime::RunStats stats;
};

// Runs k-means on the given backend with trace + metrics attached.
void RunInstrumented(api::BackendKind backend, InstrumentedRun* out) {
  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 120, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 4});
  api::RunConfig config{.machines = 3};
  config.backend = backend;
  config.trace = &out->trace;
  config.metrics = &out->metrics;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  out->stats = result->stats;
}

TEST(ThreadsObservabilityTest, TraceCarriesWallClockWorkerSpans) {
  InstrumentedRun run;
  RunInstrumented(api::BackendKind::kThreads, &run);

  // Attaching the recorder flipped it to wall-clock mode, and the export
  // says so.
  EXPECT_EQ(run.trace.clock(), TraceClock::kWall);
  EXPECT_NE(run.trace.ToJson().find("\"clock\":\"wall\""), std::string::npos);

  std::set<std::string> cats;
  bool queue_on_machine = true;
  bool quiesce_on_engine = true;
  for (const TraceEvent& event : run.trace.events()) {
    cats.insert(event.cat);
    if (std::string(event.cat) == "queue" && event.pid == kEnginePid) {
      queue_on_machine = false;
    }
    if (std::string(event.cat) == "quiesce" && event.pid != kEnginePid) {
      quiesce_on_engine = false;
    }
  }
  // Kernel execution, enqueue→dequeue waits, and the driver's quiescence
  // barrier all show up; idle spans appear whenever a worker ever blocked
  // on an empty queue (k-means with 4 supersteps always blocks somewhere).
  EXPECT_TRUE(cats.count("core") > 0);
  EXPECT_TRUE(cats.count("queue") > 0);
  EXPECT_TRUE(cats.count("idle") > 0);
  EXPECT_TRUE(cats.count("quiesce") > 0);
  EXPECT_TRUE(queue_on_machine);
  EXPECT_TRUE(quiesce_on_engine);
}

TEST(ThreadsObservabilityTest, QueueMetricsLandInTheRegistry) {
  InstrumentedRun run;
  RunInstrumented(api::BackendKind::kThreads, &run);

  const auto& hists = run.metrics.histograms();
  for (const char* name :
       {"threads_enqueue_seconds", "threads_dequeue_seconds",
        "threads_queue_wait_seconds", "threads_lock_wait_seconds",
        "threads_quiesce_wait_seconds"}) {
    auto it = hists.find(name);
    ASSERT_TRUE(it != hists.end()) << name;
    EXPECT_GT(it->second.count, 0) << name;
  }
  const auto& gauges = run.metrics.gauges();
  ASSERT_TRUE(gauges.count("threads_tasks_total") > 0);
  EXPECT_GT(gauges.at("threads_tasks_total"), 0);
  for (int m = 0; m < 3; ++m) {
    const std::string suffix = "/m" + std::to_string(m);
    EXPECT_TRUE(gauges.count("threads_tasks" + suffix) > 0) << m;
    EXPECT_TRUE(gauges.count("threads_queue_depth_peak" + suffix) > 0) << m;
  }
}

TEST(ThreadsObservabilityTest, AnalyzerDecomposesWallClockTrace) {
  InstrumentedRun run;
  RunInstrumented(api::BackendKind::kThreads, &run);

  RunAnalysis analysis = Analyze(run.trace, &run.metrics);
  EXPECT_TRUE(analysis.wall_clock);
  EXPECT_GT(analysis.total_seconds, 0);
  // The decomposition still covers the whole run end to end.
  double sum = 0;
  for (const auto& [kind, seconds] : analysis.decomposition) sum += seconds;
  EXPECT_NEAR(sum, analysis.total_seconds, 1e-9);
  // Real kernels ran, so per-operator busy totals are populated.
  EXPECT_FALSE(analysis.operator_busy.empty());
  double busy = 0;
  for (const auto& [op, seconds] : analysis.operator_busy) busy += seconds;
  EXPECT_GT(busy, 0);
  EXPECT_NE(analysis.ToJson().find("\"clock\":\"wall\""), std::string::npos);
  EXPECT_NE(analysis.ToString().find("wall time:"), std::string::npos);
}

TEST(DriftTest, ReportCorrelatesDesAndThreadsRuns) {
  InstrumentedRun des, threads;
  RunInstrumented(api::BackendKind::kDes, &des);
  RunInstrumented(api::BackendKind::kThreads, &threads);

  RunAnalysis des_analysis = Analyze(des.trace, &des.metrics);
  RunAnalysis threads_analysis = Analyze(threads.trace, &threads.metrics);
  EXPECT_FALSE(des_analysis.wall_clock);
  EXPECT_TRUE(threads_analysis.wall_clock);

  auto report = BuildDriftReport(
      DriftSide::FromAnalysis(des_analysis, "des"),
      DriftSide::FromAnalysis(threads_analysis, "threads"));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->virtual_label, "des");
  EXPECT_EQ(report->wall_label, "threads");
  EXPECT_GT(report->virtual_total, 0);
  EXPECT_GT(report->wall_total, 0);
  EXPECT_GT(report->total_ratio, 0);
  // Per-operator rows exist and at least one operator was measured on
  // both sides with a usable ratio.
  ASSERT_FALSE(report->operators.empty());
  bool any_both = false;
  for (const auto& row : report->operators) {
    if (row.in_both && row.ratio > 0) any_both = true;
  }
  EXPECT_TRUE(any_both);
  // Same program on both backends: identical control flow, so every step
  // pairs up.
  EXPECT_FALSE(report->steps.empty());
  EXPECT_EQ(report->unpaired_virtual_steps, 0);
  EXPECT_EQ(report->unpaired_wall_steps, 0);
  EXPECT_NE(report->ToString().find("drift report:"), std::string::npos);
}

TEST(DriftTest, RejectsTwoSidesInTheSameClockDomain) {
  InstrumentedRun des;
  RunInstrumented(api::BackendKind::kDes, &des);
  RunAnalysis analysis = Analyze(des.trace, &des.metrics);
  DriftSide side = DriftSide::FromAnalysis(analysis, "des");
  auto report = BuildDriftReport(side, side);
  EXPECT_FALSE(report.ok());
}

TEST(DriftTest, SideRoundTripsThroughReportJson) {
  InstrumentedRun threads;
  RunInstrumented(api::BackendKind::kThreads, &threads);
  RunAnalysis analysis = Analyze(threads.trace, &threads.metrics);

  DriftSide direct = DriftSide::FromAnalysis(analysis, "x");
  auto parsed = DriftSide::FromReportJson(analysis.ToJson(), "x");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->wall_clock, direct.wall_clock);
  EXPECT_EQ(parsed->num_machines, direct.num_machines);
  EXPECT_NEAR(parsed->total_seconds, direct.total_seconds, 1e-6);
  ASSERT_EQ(parsed->operator_busy.size(), direct.operator_busy.size());
  for (const auto& [op, seconds] : direct.operator_busy) {
    ASSERT_TRUE(parsed->operator_busy.count(op) > 0) << op;
    EXPECT_NEAR(parsed->operator_busy.at(op), seconds, 1e-6) << op;
  }
  ASSERT_EQ(parsed->step_seconds.size(), direct.step_seconds.size());
  for (size_t i = 0; i < direct.step_seconds.size(); ++i) {
    EXPECT_NEAR(parsed->step_seconds[i], direct.step_seconds[i], 1e-6) << i;
  }
}

TEST(DriftTest, ReportJsonWithoutClockFieldIsRejected) {
  auto side = DriftSide::FromReportJson("{\"total_seconds\":1}", "old");
  EXPECT_FALSE(side.ok());
  auto garbage = DriftSide::FromReportJson("not json", "bad");
  EXPECT_FALSE(garbage.ok());
}

TEST(DriftTest, ReportJsonIsDeterministicAndParses) {
  InstrumentedRun des, threads;
  RunInstrumented(api::BackendKind::kDes, &des);
  RunInstrumented(api::BackendKind::kThreads, &threads);
  auto report = BuildDriftReport(
      DriftSide::FromAnalysis(Analyze(des.trace, &des.metrics), "des"),
      DriftSide::FromAnalysis(Analyze(threads.trace, &threads.metrics),
                              "threads"));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string json = report->ToJson();
  EXPECT_EQ(json, report->ToJson());
  auto value = json::Value::Parse(json);
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_TRUE(value->is_object());
  EXPECT_NE(value->Find("operators"), nullptr);
  EXPECT_NE(value->Find("steps"), nullptr);
}

TEST(DriftTest, EventLogWallMsIsMonotoneUnderThreads) {
  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 120, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 4});
  obs::MetricsRegistry metrics;
  obs::live::EventLog::Options options;
  int64_t fake_now = 1000;
  // A deliberately jittery wall clock (steps backwards every third read):
  // the log must clamp so record order and stamp order agree.
  int reads = 0;
  options.wall_clock_ms = [&fake_now, &reads] {
    ++reads;
    fake_now += (reads % 3 == 0) ? -2 : 5;
    return fake_now;
  };
  obs::live::EventLog log(std::move(options));
  api::RunConfig config{.machines = 3};
  config.backend = api::BackendKind::kThreads;
  config.metrics = &metrics;
  config.live.event_log = &log;
  config.live.snapshots.enabled = true;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(log.appended(), 0);

  const std::string jsonl = log.BufferedToJsonl();
  int64_t last = -1;
  int records = 0;
  size_t pos = 0;
  while (pos < jsonl.size()) {
    size_t end = jsonl.find('\n', pos);
    if (end == std::string::npos) end = jsonl.size();
    auto record = json::Value::Parse(jsonl.substr(pos, end - pos));
    pos = end + 1;
    ASSERT_TRUE(record.ok()) << record.status().ToString();
    const json::Value* wall = record->Find("wall_ms");
    ASSERT_NE(wall, nullptr);
    const int64_t wall_ms = static_cast<int64_t>(wall->number());
    EXPECT_GE(wall_ms, last) << "record " << records;
    last = wall_ms;
    ++records;
  }
  EXPECT_GT(records, 0);
}

}  // namespace
}  // namespace mitos::obs::analysis
