#include "obs/analysis/analysis.h"

#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "json_lint.h"
#include "sim/fault.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::obs::analysis {
namespace {

using obs_testing::JsonLint;

// Shared fixture data: the paper's Visit Count loop on a small input.
struct Traced {
  TraceRecorder trace;
  MetricsRegistry metrics;
  double total_seconds = 0;
};

void RunTraced(api::EngineKind engine, int machines, Traced* t,
               const sim::FaultPlan* faults = nullptr) {
  sim::SimFileSystem fs;
  workloads::GenerateVisitLogs(
      &fs, {.days = 6, .entries_per_day = 400, .num_pages = 40});
  lang::Program program = workloads::VisitCountProgram({.days = 6});
  api::RunConfig config;
  config.machines = machines;
  config.trace = &t->trace;
  config.metrics = &t->metrics;
  config.faults = faults;
  auto result = api::Run(engine, program, &fs, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  t->total_seconds = result->stats.total_seconds;
}

TEST(AnalysisTest, CriticalPathIsContiguousAndSumsToTotal) {
  Traced t;
  RunTraced(api::EngineKind::kMitos, 4, &t);
  RunAnalysis analysis = Analyze(t.trace, &t.metrics);

  EXPECT_DOUBLE_EQ(analysis.total_seconds, t.total_seconds);
  EXPECT_EQ(analysis.num_machines, 4);
  ASSERT_FALSE(analysis.critical_path.empty());

  // Contiguous cover of [0, total_seconds].
  EXPECT_NEAR(analysis.critical_path.front().t_start, 0.0, 1e-12);
  EXPECT_NEAR(analysis.critical_path.back().t_end, t.total_seconds, 1e-9);
  for (size_t i = 1; i < analysis.critical_path.size(); ++i) {
    EXPECT_NEAR(analysis.critical_path[i].t_start,
                analysis.critical_path[i - 1].t_end, 1e-9)
        << "gap before segment " << i;
  }

  // The decomposition is exactly the critical path re-bucketed by kind.
  double sum = 0;
  for (const auto& [kind, seconds] : analysis.decomposition) sum += seconds;
  EXPECT_NEAR(sum, t.total_seconds, 1e-6 * (1 + t.total_seconds));

  // A Mitos run computes and launches one job.
  EXPECT_GT(analysis.DecompositionSeconds(kCompute), 0);
  EXPECT_GT(analysis.DecompositionSeconds(kLaunch), 0);
}

TEST(AnalysisTest, OperatorAndBagAttributionPopulated) {
  Traced t;
  RunTraced(api::EngineKind::kMitos, 4, &t);
  RunAnalysis analysis = Analyze(t.trace, &t.metrics);
  EXPECT_FALSE(analysis.by_operator.empty());
  EXPECT_FALSE(analysis.by_bag.empty());
  // Bag keys carry the paper's "<op>@<path_len>" identity.
  for (const auto& [bag, seconds] : analysis.by_bag) {
    EXPECT_NE(bag.find('@'), std::string::npos) << bag;
    EXPECT_GT(seconds, 0) << bag;
  }
}

// The fig9 acceptance check in miniature: with loop pipelining on, the
// coordination share of the critical path (barrier-wait + the broadcast of
// step decisions) collapses versus the barriered ablation.
TEST(AnalysisTest, PipeliningShrinksCoordinationTime) {
  Traced barriered, pipelined;
  RunTraced(api::EngineKind::kMitosNoPipelining, 4, &barriered);
  RunTraced(api::EngineKind::kMitos, 4, &pipelined);
  RunAnalysis a_barriered = Analyze(barriered.trace, &barriered.metrics);
  RunAnalysis a_pipelined = Analyze(pipelined.trace, &pipelined.metrics);

  double coord_barriered =
      a_barriered.DecompositionSeconds(kBarrierWait) +
      a_barriered.DecompositionSeconds(kDecisionBroadcast);
  double coord_pipelined =
      a_pipelined.DecompositionSeconds(kBarrierWait) +
      a_pipelined.DecompositionSeconds(kDecisionBroadcast);
  EXPECT_GT(coord_barriered, 0);
  EXPECT_LT(coord_pipelined, coord_barriered);

  // Both decompose every step window.
  EXPECT_FALSE(a_barriered.steps.empty());
  EXPECT_FALSE(a_pipelined.steps.empty());
}

// The analyzer (and the recorders feeding it) must be purely
// observational: virtual time is bit-identical with and without them.
TEST(AnalysisTest, AttachingObserversNeverChangesVirtualTime) {
  sim::SimFileSystem fs;
  workloads::GenerateVisitLogs(
      &fs, {.days = 6, .entries_per_day = 400, .num_pages = 40});
  lang::Program program = workloads::VisitCountProgram({.days = 6});

  sim::SimFileSystem fs_plain = fs;
  auto plain =
      api::Run(api::EngineKind::kMitos, program, &fs_plain, {.machines = 4});
  ASSERT_TRUE(plain.ok());

  Traced t;
  RunTraced(api::EngineKind::kMitos, 4, &t);
  RunAnalysis analysis = Analyze(t.trace, &t.metrics);

  EXPECT_EQ(plain->stats.total_seconds, t.total_seconds);  // bit-identical
  EXPECT_EQ(plain->stats.total_seconds, analysis.total_seconds);
}

TEST(AnalysisTest, SkewReportNamesInjectedStraggler) {
  auto faults = sim::FaultPlan::Parse("slow=1x3");
  ASSERT_TRUE(faults.ok()) << faults.status().ToString();
  Traced t;
  RunTraced(api::EngineKind::kMitos, 4, &t, &*faults);
  RunAnalysis analysis = Analyze(t.trace, &t.metrics);

  // Machine 1 runs CPU 3x slower, so it accumulates the most busy time.
  ASSERT_EQ(analysis.machine_busy.size(), 4u);
  EXPECT_EQ(analysis.busiest_machine, 1);
  EXPECT_GT(analysis.busy_imbalance, 1.5);

  // Per-step attribution points at machine 1 and names an operator.
  ASSERT_FALSE(analysis.skew.empty());
  int steps_blaming_m1 = 0;
  for (const StepSkew& s : analysis.skew) {
    if (s.straggler == 1 && !s.op.empty()) ++steps_blaming_m1;
  }
  EXPECT_GT(steps_blaming_m1, 0);
}

TEST(AnalysisTest, ReportAndJsonAreDeterministic) {
  Traced t;
  RunTraced(api::EngineKind::kMitos, 3, &t);
  RunAnalysis analysis = Analyze(t.trace, &t.metrics);

  std::string text = analysis.ToString();
  EXPECT_NE(text.find("critical-path report"), std::string::npos);
  EXPECT_NE(text.find("decomposition"), std::string::npos);

  std::string json = analysis.ToJson();
  std::string error;
  EXPECT_TRUE(JsonLint::IsValid(json, &error)) << error << "\n" << json;

  // Re-analyzing the same recorded data is byte-identical.
  RunAnalysis again = Analyze(t.trace, &t.metrics);
  EXPECT_EQ(json, again.ToJson());
  EXPECT_EQ(text, again.ToString());
}

// Without a metrics registry the step/skew tables are absent but the
// critical path still covers the run.
TEST(AnalysisTest, WorksWithoutMetrics) {
  Traced t;
  RunTraced(api::EngineKind::kMitos, 4, &t);
  RunAnalysis analysis = Analyze(t.trace, nullptr);
  EXPECT_TRUE(analysis.steps.empty());
  EXPECT_TRUE(analysis.skew.empty());
  EXPECT_NEAR(analysis.critical_path.back().t_end, t.total_seconds, 1e-9);
}

}  // namespace
}  // namespace mitos::obs::analysis
