// End-to-end fault injection & recovery on the Mitos engine: crashes,
// message drops, and stragglers injected into the k-means workload must
// leave the final results byte-identical to the fault-free run, and the
// whole faulted timeline must itself be deterministic.
#include <cmath>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "sim/fault.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::runtime {
namespace {

struct Outcome {
  RunStats stats;
  std::map<std::string, DatumVector> files;
};

sim::SimFileSystem KMeansInputs() {
  sim::SimFileSystem inputs;
  workloads::GeneratePoints(&inputs, {.num_points = 2000, .num_clusters = 3});
  return inputs;
}

lang::Program KMeans() {
  return workloads::KMeansProgram({.iterations = 4});
}

StatusOr<Outcome> RunKMeans(const sim::FaultPlan* plan, int machines = 4) {
  sim::SimFileSystem inputs = KMeansInputs();
  sim::SimFileSystem fs = inputs;
  api::RunConfig config;
  config.machines = machines;
  config.faults = plan;
  auto result = api::Run(api::EngineKind::kMitos, KMeans(), &fs, config);
  MITOS_RETURN_IF_ERROR(result.status());
  Outcome outcome;
  outcome.stats = result->stats;
  for (const std::string& name : fs.ListFiles()) {
    if (inputs.Exists(name)) continue;  // compare outputs only
    outcome.files[name] = *fs.Read(name);
  }
  return outcome;
}

// Exact equality, element order included: recovery must reconstruct the
// run, not just something equivalent.
void ExpectSameFiles(const Outcome& a, const Outcome& b) {
  ASSERT_EQ(a.files.size(), b.files.size());
  for (const auto& [name, data] : a.files) {
    auto it = b.files.find(name);
    ASSERT_TRUE(it != b.files.end()) << name;
    EXPECT_EQ(data, it->second) << name;
  }
}

// Crash time as a fraction of the measured fault-free COMPUTE phase (after
// job launch — a crash during deployment loses nothing), so the fault
// always lands mid-loop regardless of cluster constants.
double MidLoopCrashTime(double fraction) {
  static const RunStats stats = [] {
    auto outcome = RunKMeans(nullptr);
    MITOS_CHECK(outcome.ok());
    return outcome->stats;
  }();
  return stats.launch_seconds +
         fraction * (stats.total_seconds - stats.launch_seconds);
}

TEST(RecoveryTest, CrashMidLoopRecoversByteIdentical) {
  auto fault_free = RunKMeans(nullptr);
  ASSERT_TRUE(fault_free.ok()) << fault_free.status().ToString();
  ASSERT_FALSE(fault_free->files.empty());
  EXPECT_EQ(fault_free->stats.attempts, 1);
  EXPECT_EQ(fault_free->stats.recomputed_bags, 0);

  sim::FaultPlan plan;
  plan.crashes.push_back({.machine = 1,
                          .at = MidLoopCrashTime(0.4),
                          .restart_after = 0.5});
  auto crashed = RunKMeans(&plan);
  ASSERT_TRUE(crashed.ok()) << crashed.status().ToString();
  EXPECT_GE(crashed->stats.attempts, 2);
  EXPECT_GT(crashed->stats.recovery_seconds, 0.0);
  EXPECT_GT(crashed->stats.recomputed_bags, 0);
  EXPECT_GT(crashed->stats.total_seconds, fault_free->stats.total_seconds);
  ExpectSameFiles(*fault_free, *crashed);
}

TEST(RecoveryTest, FaultedRunIsDeterministic) {
  sim::FaultPlan plan;
  plan.crashes.push_back({.machine = 1,
                          .at = MidLoopCrashTime(0.4),
                          .restart_after = 0.5});
  plan.drop_probability = 0.01;
  auto first = RunKMeans(&plan);
  auto second = RunKMeans(&plan);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // The whole failure + recovery timeline replays exactly.
  EXPECT_EQ(first->stats.total_seconds, second->stats.total_seconds);
  EXPECT_EQ(first->stats.recovery_seconds, second->stats.recovery_seconds);
  EXPECT_EQ(first->stats.attempts, second->stats.attempts);
  EXPECT_EQ(first->stats.recomputed_bags, second->stats.recomputed_bags);
  EXPECT_EQ(first->stats.cluster.dropped_messages,
            second->stats.cluster.dropped_messages);
  ExpectSameFiles(*first, *second);
}

TEST(RecoveryTest, CheckpointModeRecoversByteIdentical) {
  auto fault_free = RunKMeans(nullptr);
  ASSERT_TRUE(fault_free.ok());

  sim::FaultPlan plan;
  plan.crashes.push_back({.machine = 2,
                          .at = MidLoopCrashTime(0.6),
                          .restart_after = 0.5});
  plan.checkpoint_every = 2;
  auto ckpt = RunKMeans(&plan);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  EXPECT_GE(ckpt->stats.attempts, 2);
  EXPECT_GT(ckpt->stats.checkpoints, 0);
  ExpectSameFiles(*fault_free, *ckpt);
}

TEST(RecoveryTest, PermanentCrashExhaustsAttempts) {
  sim::FaultPlan plan;
  plan.crashes.push_back(
      {.machine = 1, .at = MidLoopCrashTime(0.4)});  // never restarts
  plan.max_attempts = 3;
  auto outcome = RunKMeans(&plan);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
}

TEST(RecoveryTest, MessageDropsRetransmitToTheSameResult) {
  auto fault_free = RunKMeans(nullptr);
  ASSERT_TRUE(fault_free.ok());

  sim::FaultPlan plan;
  plan.drop_probability = 0.02;
  auto dropped = RunKMeans(&plan);
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_EQ(dropped->stats.attempts, 1);  // retransmits, not re-execution
  EXPECT_GT(dropped->stats.cluster.dropped_messages, 0);
  EXPECT_GE(dropped->stats.total_seconds, fault_free->stats.total_seconds);
  ExpectSameFiles(*fault_free, *dropped);
}

TEST(RecoveryTest, SlowNodeSkewsTimeNotResults) {
  auto fault_free = RunKMeans(nullptr);
  ASSERT_TRUE(fault_free.ok());

  sim::FaultPlan plan;
  plan.slowdowns.push_back({.machine = 1, .multiplier = 4.0});
  auto slowed = RunKMeans(&plan);
  ASSERT_TRUE(slowed.ok()) << slowed.status().ToString();
  EXPECT_EQ(slowed->stats.attempts, 1);
  EXPECT_GT(slowed->stats.total_seconds, fault_free->stats.total_seconds);
  ExpectSameFiles(*fault_free, *slowed);
}

TEST(RecoveryTest, StatsLineMentionsRecoveryOnlyWhenItHappened) {
  auto fault_free = RunKMeans(nullptr);
  ASSERT_TRUE(fault_free.ok());
  EXPECT_EQ(fault_free->stats.ToString().find("attempts="), std::string::npos);

  sim::FaultPlan plan;
  plan.crashes.push_back({.machine = 1,
                          .at = MidLoopCrashTime(0.4),
                          .restart_after = 0.5});
  auto crashed = RunKMeans(&plan);
  ASSERT_TRUE(crashed.ok());
  EXPECT_NE(crashed->stats.ToString().find("attempts="), std::string::npos);
  EXPECT_NE(crashed->stats.ToString().find("recomputed="), std::string::npos);
}

TEST(RecoveryTest, NonMitosEnginesRejectFaultPlans) {
  sim::FaultPlan plan;
  plan.crashes.push_back({.machine = 0, .at = 1.0});
  sim::SimFileSystem fs = KMeansInputs();
  api::RunConfig config;
  config.machines = 4;
  config.faults = &plan;
  auto result = api::Run(api::EngineKind::kSpark, KMeans(), &fs, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(RecoveryTest, OutOfRangeMachineIsRejected) {
  sim::FaultPlan plan;
  plan.crashes.push_back({.machine = 99, .at = 1.0});
  auto outcome = RunKMeans(&plan);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecoveryTest, EmptyPlanIsIdenticalToNoPlan) {
  auto no_plan = RunKMeans(nullptr);
  sim::FaultPlan empty;
  auto with_empty = RunKMeans(&empty);
  ASSERT_TRUE(no_plan.ok());
  ASSERT_TRUE(with_empty.ok());
  EXPECT_EQ(no_plan->stats.total_seconds, with_empty->stats.total_seconds);
  ExpectSameFiles(*no_plan, *with_empty);
}

}  // namespace
}  // namespace mitos::runtime
