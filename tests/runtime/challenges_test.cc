// Explicit reproductions of the paper's runtime challenges (Sec. 5.1) and
// optimizations (Sec. 5.3), asserted against the reference interpreter and
// through the runtime's own statistics.
#include <algorithm>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "lang/builder.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::runtime {
namespace {

using lang::ProgramBuilder;

DatumVector Sorted(DatumVector v) {
  std::sort(v.begin(), v.end(),
            [](const Datum& a, const Datum& b) { return a < b; });
  return v;
}

void ExpectMatchesReference(const lang::Program& program,
                            const sim::SimFileSystem& inputs, int machines) {
  sim::SimFileSystem fs_ref = inputs;
  auto ref = api::Run(api::EngineKind::kReference, program, &fs_ref);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  sim::SimFileSystem fs = inputs;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs,
                         {.machines = machines});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(fs_ref.ListFiles(), fs.ListFiles());
  for (const std::string& name : fs_ref.ListFiles()) {
    EXPECT_EQ(Sorted(*fs_ref.Read(name)), Sorted(*fs.Read(name))) << name;
  }
}

// Challenge 1: with loop pipelining, elements of *different* bags from
// different steps interleave on shuffle channels; bag identifiers must
// separate them. A per-day reduceByKey whose results are written per day
// would silently merge days if separation failed.
TEST(ChallengesTest, Challenge1ElementSeparationAcrossOverlappingSteps) {
  sim::SimFileSystem inputs;
  // Strongly skewed per-day contents so cross-day mixing would be visible.
  for (int day = 1; day <= 6; ++day) {
    DatumVector entries;
    for (int i = 0; i < 50 * day; ++i) {
      entries.push_back(Datum::Int64(day));  // each day visits "its" page
    }
    inputs.Write("pageVisitLog" + std::to_string(day), std::move(entries));
  }
  lang::Program program =
      workloads::VisitCountProgram({.days = 6, .with_diffs = false});
  ExpectMatchesReference(program, inputs, 4);

  // Sanity on the actual values: day d's count file holds exactly
  // (d, 50*d).
  sim::SimFileSystem fs = inputs;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs,
                         {.machines = 4});
  ASSERT_TRUE(result.ok());
  for (int day = 1; day <= 6; ++day) {
    auto data = fs.Read("diff" + std::to_string(day));
    ASSERT_TRUE(data.ok());
    ASSERT_EQ(data->size(), 1u) << "day " << day;
    EXPECT_EQ((*data)[0],
              Datum::Pair(Datum::Int64(day), Datum::Int64(50 * day)));
  }
}

// Challenge 2 (Fig. 4a): x computed in the OUTER loop, joined inside the
// INNER loop — one x bag must be matched with several inner-loop bags.
TEST(ChallengesTest, Challenge2OuterBagReusedByInnerLoop) {
  ProgramBuilder pb;
  pb.Assign("log", lang::BagLit({}));
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(3)), [&] {
    // x changes once per OUTER iteration: (k, 100*i) for k in 0..4.
    pb.Assign("iBag", lang::FromScalar(lang::Var("i")));
    pb.Assign("x", lang::FlatMap(lang::Var("iBag"), {"expand",
                                                     [](const Datum& iv) {
        DatumVector out;
        for (int64_t k = 0; k < 5; ++k) {
          out.push_back(Datum::Pair(Datum::Int64(k),
                                    Datum::Int64(100 * iv.int64())));
        }
        return out;
      }}));
    pb.Assign("j", lang::LitInt(0));
    pb.While(lang::Lt(lang::Var("j"), lang::LitInt(4)), [&] {
      // y changes per INNER iteration.
      pb.Assign("jBag", lang::FromScalar(lang::Var("j")));
      pb.Assign("y", lang::Map(lang::Var("jBag"), {"key", [](const Datum& jv) {
                       return Datum::Pair(Datum::Int64(jv.int64() % 5),
                                          jv);
                     }}));
      pb.Assign("z", lang::Join(lang::Var("x"), lang::Var("y")));
      pb.Assign("log", lang::Union(lang::Var("log"), lang::Var("z")));
      pb.Assign("j", lang::Add(lang::Var("j"), lang::LitInt(1)));
    });
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::Var("log"), lang::LitString("out"));
  ExpectMatchesReference(pb.Build(), {}, 3);
}

// Challenge 3 (Fig. 4b): an if inside a loop assigning x and y in both
// branches; first-come-first-served matching would pair x from one branch
// with y from the other under pipelining. The path order ABDACD must rule.
TEST(ChallengesTest, Challenge3BranchAlternationKeepsPairsTogether) {
  ProgramBuilder pb;
  pb.Assign("log", lang::BagLit({}));
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(6)), [&] {
    pb.If(lang::Eq(lang::Mod(lang::Var("i"), lang::LitInt(2)),
                   lang::LitInt(0)),
          [&] {
            pb.Assign("x", lang::BagLit({Datum::Pair(Datum::Int64(0),
                                                     Datum::Int64(1))}));
            pb.Assign("y", lang::BagLit({Datum::Pair(Datum::Int64(0),
                                                     Datum::Int64(10))}));
          },
          [&] {
            pb.Assign("x", lang::BagLit({Datum::Pair(Datum::Int64(0),
                                                     Datum::Int64(2))}));
            pb.Assign("y", lang::BagLit({Datum::Pair(Datum::Int64(0),
                                                     Datum::Int64(20))}));
          });
    // z must always pair (1,10) or (2,20) — never (1,20) or (2,10).
    pb.Assign("z", lang::Join(lang::Var("x"), lang::Var("y")));
    pb.Assign("log", lang::Union(lang::Var("log"), lang::Var("z")));
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::Var("log"), lang::LitString("out"));

  ExpectMatchesReference(pb.Build(), {}, 4);

  sim::SimFileSystem fs;
  auto result = api::Run(api::EngineKind::kMitos, pb.Build(), &fs,
                         {.machines = 4});
  ASSERT_TRUE(result.ok());
  auto out = fs.Read("out");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 6u);
  for (const Datum& z : *out) {
    int64_t xv = z.field(1).int64();
    int64_t yv = z.field(2).int64();
    EXPECT_EQ(yv, xv * 10) << "mismatched branch pairing: " << z.ToString();
  }
}

// Sec. 5.3: the hoisted-reuse counter is observable: P join instances
// reuse the invariant build side on every step after the first.
TEST(ChallengesTest, HoistingReuseCountMatchesSteps) {
  constexpr int kDays = 5;
  constexpr int kMachines = 3;
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = kDays,
                                         .entries_per_day = 100,
                                         .num_pages = 20});
  workloads::GeneratePageTypes(&inputs, {.num_pages = 20, .num_types = 2});
  lang::Program program = workloads::VisitCountProgram(
      {.days = kDays, .with_diffs = false, .with_page_types = true});

  sim::SimFileSystem fs = inputs;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs,
                         {.machines = kMachines});
  ASSERT_TRUE(result.ok());
  // The pageTypes join: kMachines instances x (kDays - 1) later steps.
  EXPECT_EQ(result->stats.hoisted_reuses, kMachines * (kDays - 1));

  sim::SimFileSystem fs2 = inputs;
  auto no_hoist = api::Run(api::EngineKind::kMitosNoHoisting, program, &fs2,
                           {.machines = kMachines});
  ASSERT_TRUE(no_hoist.ok());
  EXPECT_EQ(no_hoist->stats.hoisted_reuses, 0);
}

// The day-comparison join's build side (yesterday's counts) changes every
// step: it must NOT be treated as invariant.
TEST(ChallengesTest, ChangingBuildSideIsNeverReused) {
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = 4, .entries_per_day = 60,
                                         .num_pages = 10});
  lang::Program program = workloads::VisitCountProgram({.days = 4});
  sim::SimFileSystem fs = inputs;
  auto result =
      api::Run(api::EngineKind::kMitos, program, &fs, {.machines = 2});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.hoisted_reuses, 0);
}

// Conditional-output discard (Sec. 5.2.4): a bag produced for an if-branch
// that the path never takes again is dropped, and results stay correct
// when branches alternate irregularly.
TEST(ChallengesTest, ConditionalEdgeGatingOverIrregularBranches) {
  ProgramBuilder pb;
  pb.Assign("acc", lang::BagLit({}));
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(9)), [&] {
    // Taken on i = 0, 1, 3, 4, 6, 7 (skips multiples of 3 shifted):
    pb.If(lang::Ne(lang::Mod(lang::Var("i"), lang::LitInt(3)),
                   lang::LitInt(2)),
          [&] {
            pb.Assign("contrib", lang::FromScalar(lang::Var("i")));
            pb.Assign("acc", lang::Union(lang::Var("acc"),
                                         lang::Var("contrib")));
          });
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::Var("acc"), lang::LitString("out"));
  ExpectMatchesReference(pb.Build(), {}, 3);
}

}  // namespace
}  // namespace mitos::runtime
