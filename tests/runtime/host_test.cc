// White-box tests of BagOperatorHost's coordination rules through a mock
// RuntimeContext and hand-built graphs: the longest-prefix input choice
// (Sec. 5.2.3) including the Φ same-block adjustment, conditional-output
// gating and discard (Sec. 5.2.4), and cache eviction.
#include <gtest/gtest.h>

#include "runtime/host.h"

namespace mitos::runtime {
namespace {

using dataflow::EdgeKind;
using dataflow::EdgeRef;
using dataflow::LogicalGraph;
using dataflow::LogicalNode;
using dataflow::NodeKind;
using dataflow::ShuffleKey;

// A loop CFG: 0 (entry) -> 1 (body, branch back or out) -> 2 (exit).
ir::Program LoopProgram() {
  ir::Program p;
  // One bool condition variable, defined in block 1.
  ir::VarInfo cond;
  cond.name = "c";
  cond.def_block = 1;
  cond.def_index = 0;
  cond.singleton = true;
  p.vars.push_back(cond);

  ir::BasicBlock entry;
  entry.label = "entry";
  entry.term = {ir::Terminator::Kind::kJump, 1, ir::kNoBlock, ir::kNoVar};
  p.blocks.push_back(entry);

  ir::BasicBlock body;
  body.label = "body";
  ir::Stmt def;
  def.result = 0;
  def.op = ir::OpKind::kBagLit;
  def.bag_lit = {Datum::Bool(true)};
  body.stmts.push_back(def);
  body.term = {ir::Terminator::Kind::kBranch, 1, 2, 0};
  p.blocks.push_back(body);

  ir::BasicBlock after;
  after.label = "after";
  after.term = {ir::Terminator::Kind::kExit, ir::kNoBlock, ir::kNoBlock,
                ir::kNoVar};
  p.blocks.push_back(after);
  return p;
}

class MockContext : public RuntimeContext {
 public:
  MockContext(const LogicalGraph* graph, const ir::Program* program)
      : graph_(graph), cfg_(*program) {
    cluster_config_.num_machines = 1;
    cluster_ = std::make_unique<sim::Cluster>(&sim_, cluster_config_);
    backend_ = std::make_unique<DesBackend>(&sim_, cluster_.get());
  }

  Backend* backend() override { return backend_.get(); }
  sim::SimFileSystem* fs() override { return &fs_; }
  const dataflow::LogicalGraph& graph() const override { return *graph_; }
  const ir::Cfg& cfg() const override { return cfg_; }
  bool hoisting() const override { return true; }
  bool blocking_shuffles() const override { return false; }
  obs::TraceRecorder* trace() const override { return cluster_->trace(); }
  bool discard_spent_bags() const override { return true; }
  BagOperatorHost* host(dataflow::NodeId node, int instance) override {
    return hosts_.at(static_cast<size_t>(node))[static_cast<size_t>(
        instance)];
  }
  int MachineOf(dataflow::NodeId, int) const override { return 0; }
  void OnDecision(ir::BlockId block, int path_len, bool value,
                  int) override {
    decisions.push_back({block, path_len, value});
  }
  void Fail(Status status) override {
    if (error.ok()) error = std::move(status);
  }
  bool failed() const override { return !error.ok(); }
  void BeginFileWrite(const std::string&, BagId) override {}
  void CountBag(int64_t) override { ++bags; }
  void CountReuse() override { ++reuses; }
  void TrackMemory(int64_t delta) override { memory += delta; }
  void ChargeOpCpu(dataflow::NodeId, double) override {}

  struct Decision {
    ir::BlockId block;
    int path_len;
    bool value;
  };

  sim::Simulator sim_;
  sim::ClusterConfig cluster_config_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<DesBackend> backend_;
  sim::SimFileSystem fs_;
  const LogicalGraph* graph_;
  ir::Cfg cfg_;
  std::vector<std::vector<BagOperatorHost*>> hosts_;
  std::vector<Decision> decisions;
  Status error;
  int bags = 0;
  int reuses = 0;
  int64_t memory = 0;
};

// Fixture: a Φ in the loop body with inputs from the entry block (init)
// and from later in the same body block (the loop update) — the exact
// same-block back-edge shape of a single-block do-while body.
class PhiChoiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    program_ = LoopProgram();

    // node 0: init (bagLit, block 0); node 1: Φ (block 1);
    // node 2: update (map, block 1, consumes Φ).
    LogicalNode init;
    init.id = 0;
    init.kind = NodeKind::kBagLit;
    init.name = "init";
    init.block = 0;
    init.parallelism = 1;
    init.literal = {Datum::Int64(0)};
    graph_.nodes.push_back(init);

    LogicalNode phi;
    phi.id = 1;
    phi.kind = NodeKind::kPhi;
    phi.name = "phi";
    phi.block = 1;
    phi.parallelism = 1;
    phi.inputs.push_back(
        EdgeRef{0, 0, EdgeKind::kForward, ShuffleKey::kField0, true});
    phi.inputs.push_back(
        EdgeRef{2, 1, EdgeKind::kForward, ShuffleKey::kField0, false});
    graph_.nodes.push_back(phi);

    LogicalNode update;
    update.id = 2;
    update.kind = NodeKind::kMap;
    update.name = "update";
    update.block = 1;
    update.parallelism = 1;
    update.unary = lang::fns::AddInt64(1);
    update.inputs.push_back(
        EdgeRef{1, 0, EdgeKind::kForward, ShuffleKey::kField0, false});
    graph_.nodes.push_back(update);

    ctx_ = std::make_unique<MockContext>(&graph_, &program_);
    path_ = std::make_unique<ExecutionPath>();
    cfm_ = std::make_unique<ControlFlowManager>(path_.get());
    for (dataflow::NodeId n = 0; n < graph_.num_nodes(); ++n) {
      owned_.push_back(std::make_unique<BagOperatorHost>(
          ctx_.get(), &graph_.node(n), 0, 0, cfm_.get()));
      ctx_->hosts_.push_back({owned_.back().get()});
    }
    for (auto& host : owned_) host->Init();
  }

  void Advance(ir::BlockId block, bool complete = false) {
    path_->Append(block);
    if (complete) path_->MarkComplete();
    cfm_->AdvanceTo(path_->size(), complete);
    ctx_->sim_.Run();
  }

  ir::Program program_;
  LogicalGraph graph_;
  std::unique_ptr<MockContext> ctx_;
  std::unique_ptr<ExecutionPath> path_;
  std::unique_ptr<ControlFlowManager> cfm_;
  std::vector<std::unique_ptr<BagOperatorHost>> owned_;
};

TEST_F(PhiChoiceTest, SameBlockBackEdgeTakesPreviousOccurrence) {
  // Iteration 1: path [0, 1] — Φ must take the init input (the update of
  // the same occurrence does not exist yet).
  Advance(0);
  Advance(1);
  ASSERT_TRUE(ctx_->error.ok()) << ctx_->error.ToString();
  // init + Φ + update each completed one bag.
  EXPECT_EQ(ctx_->bags, 3);

  // Iteration 2: path [0, 1, 1] — Φ must take the update's bag from the
  // PREVIOUS occurrence (max_len = L-1 rule), not its own. Only Φ and the
  // update run again (init's block does not re-occur).
  Advance(1);
  ASSERT_TRUE(ctx_->error.ok()) << ctx_->error.ToString();
  EXPECT_EQ(ctx_->bags, 5);

  // Exit. All hosts idle, nothing stuck.
  Advance(2, /*complete=*/true);
  for (auto& host : owned_) {
    EXPECT_TRUE(host->Idle()) << host->DebugState();
  }
  // The update host saw 0 then 0+1: memory released after eviction.
  EXPECT_TRUE(ctx_->error.ok());
}

TEST_F(PhiChoiceTest, SpentBagsAreEvictedAsThePathMovesOn) {
  Advance(0);
  Advance(1);
  int64_t after_one = ctx_->memory;
  for (int i = 0; i < 10; ++i) Advance(1);
  Advance(2, /*complete=*/true);
  // Buffered memory does not accumulate across iterations (discard rule +
  // eviction): final footprint is bounded by a couple of live bags.
  EXPECT_LE(ctx_->memory, after_one * 3 + 64);
  for (auto& host : owned_) {
    EXPECT_TRUE(host->Idle()) << host->DebugState();
  }
}

// Conditional gating: a producer in the loop body feeding a consumer in
// the after-block transmits only the LAST iteration's bag; earlier bags
// are discarded when the body block re-occurs.
class ConditionalGateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    program_ = LoopProgram();

    LogicalNode producer;  // bagLit in the body
    producer.id = 0;
    producer.kind = NodeKind::kBagLit;
    producer.name = "producer";
    producer.block = 1;
    producer.parallelism = 1;
    producer.literal = {Datum::Int64(7)};
    graph_.nodes.push_back(producer);

    LogicalNode consumer;  // map in the after-block
    consumer.id = 1;
    consumer.kind = NodeKind::kMap;
    consumer.name = "consumer";
    consumer.block = 2;
    consumer.parallelism = 1;
    consumer.unary = lang::fns::Identity();
    consumer.inputs.push_back(
        EdgeRef{0, 0, EdgeKind::kForward, ShuffleKey::kField0, true});
    graph_.nodes.push_back(consumer);

    ctx_ = std::make_unique<MockContext>(&graph_, &program_);
    path_ = std::make_unique<ExecutionPath>();
    cfm_ = std::make_unique<ControlFlowManager>(path_.get());
    for (dataflow::NodeId n = 0; n < graph_.num_nodes(); ++n) {
      owned_.push_back(std::make_unique<BagOperatorHost>(
          ctx_.get(), &graph_.node(n), 0, 0, cfm_.get()));
      ctx_->hosts_.push_back({owned_.back().get()});
    }
    for (auto& host : owned_) host->Init();
  }

  void Advance(ir::BlockId block, bool complete = false) {
    path_->Append(block);
    if (complete) path_->MarkComplete();
    cfm_->AdvanceTo(path_->size(), complete);
    ctx_->sim_.Run();
  }

  ir::Program program_;
  LogicalGraph graph_;
  std::unique_ptr<MockContext> ctx_;
  std::unique_ptr<ExecutionPath> path_;
  std::unique_ptr<ControlFlowManager> cfm_;
  std::vector<std::unique_ptr<BagOperatorHost>> owned_;
};

TEST_F(ConditionalGateTest, OnlyLastIterationsBagReachesTheConsumer) {
  Advance(0);
  Advance(1);  // iteration 1: producer bag 1 gated
  Advance(1);  // iteration 2: bag 1 discarded (body re-occurred), bag 2 gated
  Advance(1);  // iteration 3
  EXPECT_EQ(ctx_->bags, 3);  // three producer bags, consumer none yet
  Advance(2, /*complete=*/true);  // bag 3 transmits; consumer runs once
  EXPECT_EQ(ctx_->bags, 4);
  for (auto& host : owned_) {
    EXPECT_TRUE(host->Idle()) << host->DebugState();
  }
  EXPECT_TRUE(ctx_->error.ok()) << ctx_->error.ToString();
}

TEST_F(ConditionalGateTest, LoopSkippedEntirely) {
  // Path goes straight to the exit-side block without the body ever
  // occurring... the consumer in block 2 then has no available input and
  // would be a compiler bug — verify the host reports it instead of
  // hanging.
  Advance(0);
  Advance(2, /*complete=*/true);
  EXPECT_FALSE(ctx_->error.ok());
  EXPECT_NE(ctx_->error.message().find("no available bag"),
            std::string::npos);
}

}  // namespace
}  // namespace mitos::runtime
