#include "runtime/executor.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "lang/builder.h"
#include "lang/interpreter.h"
#include "workloads/programs.h"

namespace mitos::runtime {
namespace {

using lang::ProgramBuilder;

DatumVector Ints(std::initializer_list<int64_t> values) {
  DatumVector out;
  for (int64_t v : values) out.push_back(Datum::Int64(v));
  return out;
}

DatumVector Sorted(DatumVector v) {
  std::sort(v.begin(), v.end(),
            [](const Datum& a, const Datum& b) { return a < b; });
  return v;
}

// Runs `program` in the reference interpreter and under Mitos on `machines`
// simulated machines, then compares all file outputs as sorted multisets
// (distributed partitions arrive unordered).
RunStats ExpectMitosMatchesReference(const lang::Program& program,
                                     const sim::SimFileSystem& inputs,
                                     int machines,
                                     ExecutorOptions options = {}) {
  sim::SimFileSystem fs_ref = inputs;
  lang::Interpreter interp(&fs_ref);
  Status ref_status = interp.Run(program);
  EXPECT_TRUE(ref_status.ok()) << ref_status.ToString();

  sim::SimFileSystem fs_mitos = inputs;
  sim::Simulator sim;
  sim::ClusterConfig cluster_config;
  cluster_config.num_machines = machines;
  sim::Cluster cluster(&sim, cluster_config);
  MitosExecutor executor(&sim, &cluster, &fs_mitos, options);
  StatusOr<RunStats> stats = executor.Run(program);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  if (!stats.ok()) return RunStats{};

  EXPECT_EQ(fs_ref.ListFiles(), fs_mitos.ListFiles());
  for (const std::string& name : fs_ref.ListFiles()) {
    EXPECT_EQ(Sorted(*fs_ref.Read(name)), Sorted(*fs_mitos.Read(name)))
        << "file " << name << " differs on " << machines << " machines";
  }
  EXPECT_GT(stats->total_seconds, 0.0);
  return *stats;
}

TEST(MitosExecutorTest, StraightLineMapWrite) {
  ProgramBuilder pb;
  pb.Assign("b", lang::BagLit(Ints({1, 2, 3, 4, 5})));
  pb.WriteFile(lang::Map(lang::Var("b"), lang::fns::AddInt64(10)),
               lang::LitString("out"));
  ExpectMitosMatchesReference(pb.Build(), {}, 1);
  ExpectMitosMatchesReference(pb.Build(), {}, 4);
}

TEST(MitosExecutorTest, ReadMapReduceWrite) {
  sim::SimFileSystem inputs;
  DatumVector data;
  for (int i = 0; i < 1000; ++i) data.push_back(Datum::Int64(i % 13));
  inputs.Write("in", data);

  ProgramBuilder pb;
  pb.Assign("visits", lang::ReadFile(lang::LitString("in")));
  pb.Assign("counts", lang::ReduceByKey(
                          lang::Map(lang::Var("visits"),
                                    lang::fns::PairWithOne()),
                          lang::fns::SumInt64()));
  pb.WriteFile(lang::Var("counts"), lang::LitString("out"));
  for (int machines : {1, 3, 8}) {
    ExpectMitosMatchesReference(pb.Build(), inputs, machines);
  }
}

TEST(MitosExecutorTest, SimpleCountingLoop) {
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(5)), [&] {
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::FromScalar(lang::Var("i")), lang::LitString("out"));
  RunStats stats = ExpectMitosMatchesReference(pb.Build(), {}, 2);
  // 5 iterations + exit test... the while header evaluates 6 times.
  EXPECT_EQ(stats.decisions, 6);
}

TEST(MitosExecutorTest, DoWhileLoop) {
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.DoWhile(
      [&] { pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1))); },
      lang::Lt(lang::Var("i"), lang::LitInt(4)));
  pb.WriteFile(lang::FromScalar(lang::Var("i")), lang::LitString("out"));
  RunStats stats = ExpectMitosMatchesReference(pb.Build(), {}, 2);
  EXPECT_EQ(stats.decisions, 4);
}

TEST(MitosExecutorTest, LoopThatNeverRuns) {
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(10));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(5)), [&] {
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::FromScalar(lang::Var("i")), lang::LitString("out"));
  ExpectMitosMatchesReference(pb.Build(), {}, 2);
}

TEST(MitosExecutorTest, IfInsideLoopBothBranches) {
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.Assign("acc", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(6)), [&] {
    pb.If(lang::Eq(lang::Mod(lang::Var("i"), lang::LitInt(2)),
                   lang::LitInt(0)),
          [&] {
            pb.Assign("acc", lang::Add(lang::Var("acc"), lang::Var("i")));
          },
          [&] {
            pb.Assign("acc", lang::Sub(lang::Var("acc"), lang::LitInt(1)));
          });
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::FromScalar(lang::Var("acc")), lang::LitString("out"));
  ExpectMitosMatchesReference(pb.Build(), {}, 3);
}

TEST(MitosExecutorTest, FileReadInsideLoop) {
  sim::SimFileSystem inputs;
  inputs.Write("in1", Ints({1, 2, 3}));
  inputs.Write("in2", Ints({4, 5}));
  inputs.Write("in3", Ints({6}));
  ProgramBuilder pb;
  pb.Assign("day", lang::LitInt(1));
  pb.DoWhile(
      [&] {
        pb.Assign("data", lang::ReadFile(lang::Concat(lang::LitString("in"),
                                                      lang::Var("day"))));
        pb.WriteFile(lang::Map(lang::Var("data"), lang::fns::AddInt64(100)),
                     lang::Concat(lang::LitString("out"), lang::Var("day")));
        pb.Assign("day", lang::Add(lang::Var("day"), lang::LitInt(1)));
      },
      lang::Le(lang::Var("day"), lang::LitInt(3)));
  for (int machines : {1, 4}) {
    ExpectMitosMatchesReference(pb.Build(), inputs, machines);
  }
}

TEST(MitosExecutorTest, VisitCountDiffFullPaperExample) {
  sim::SimFileSystem inputs;
  inputs.Write("pageVisitLog1", Ints({1, 1, 2, 5, 5, 5}));
  inputs.Write("pageVisitLog2", Ints({1, 2, 2, 5}));
  inputs.Write("pageVisitLog3", Ints({2, 2, 2, 1}));
  inputs.Write("pageVisitLog4", Ints({7, 7, 1, 2}));
  lang::Program program = workloads::VisitCountProgram({.days = 4});
  for (int machines : {1, 2, 5}) {
    ExpectMitosMatchesReference(program, inputs, machines);
  }
}

TEST(MitosExecutorTest, LoopInvariantJoinInsideLoop) {
  // The pageTypes pattern (paper Sec. 2): a static dataset read before the
  // loop, joined inside the loop.
  sim::SimFileSystem inputs;
  inputs.Write("pageTypes", {Datum::Pair(Datum::Int64(1), Datum::Int64(0)),
                             Datum::Pair(Datum::Int64(2), Datum::Int64(1)),
                             Datum::Pair(Datum::Int64(3), Datum::Int64(0))});
  inputs.Write("log1", Ints({1, 2, 3, 1}));
  inputs.Write("log2", Ints({2, 2, 3}));

  ProgramBuilder pb;
  pb.Assign("types", lang::ReadFile(lang::LitString("pageTypes")));
  pb.Assign("day", lang::LitInt(1));
  pb.DoWhile(
      [&] {
        pb.Assign("visits", lang::ReadFile(lang::Concat(lang::LitString("log"),
                                                        lang::Var("day"))));
        pb.Assign("tagged",
                  lang::Join(lang::Var("types"),
                             lang::Map(lang::Var("visits"),
                                       lang::fns::PairWithOne())));
        pb.Assign("interesting",
                  lang::Filter(lang::Var("tagged"),
                               lang::fns::FieldEquals(1, Datum::Int64(0))));
        pb.WriteFile(lang::Var("interesting"),
                     lang::Concat(lang::LitString("out"), lang::Var("day")));
        pb.Assign("day", lang::Add(lang::Var("day"), lang::LitInt(1)));
      },
      lang::Le(lang::Var("day"), lang::LitInt(2)));
  for (int machines : {1, 4}) {
    ExpectMitosMatchesReference(pb.Build(), inputs, machines);
  }
}

TEST(MitosExecutorTest, NestedLoops) {
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.Assign("acc", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(3)), [&] {
    pb.Assign("j", lang::LitInt(0));
    pb.While(lang::Lt(lang::Var("j"), lang::LitInt(4)), [&] {
      pb.Assign("acc", lang::Add(lang::Var("acc"), lang::LitInt(1)));
      pb.Assign("j", lang::Add(lang::Var("j"), lang::LitInt(1)));
    });
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::FromScalar(lang::Var("acc")), lang::LitString("out"));
  ExpectMitosMatchesReference(pb.Build(), {}, 2);
}

TEST(MitosExecutorTest, NestedLoopWithInvariantOuterJoinInput) {
  // Figure 4a: x computed in the outer loop, joined against y in the inner
  // loop — the x bag must be reused across inner iterations (Challenge 2).
  sim::SimFileSystem inputs;
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.Assign("total", lang::BagLit({}));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(3)), [&] {
    pb.Assign("x", lang::BagLit({Datum::Pair(Datum::Int64(0),
                                             Datum::Int64(100))}));
    pb.Assign("x", lang::Map(lang::Var("x"), {"shift", [](const Datum& p) {
                               return Datum::Pair(p.field(0),
                                                  p.field(1));
                             }}));
    pb.Assign("j", lang::LitInt(0));
    pb.While(lang::Lt(lang::Var("j"), lang::LitInt(3)), [&] {
      pb.Assign("y", lang::FromScalar(lang::Mul(lang::Var("j"),
                                                lang::LitInt(10))));
      pb.Assign("ypairs",
                lang::Map(lang::Var("y"), {"pair0", [](const Datum& v) {
                            return Datum::Pair(Datum::Int64(0), v);
                          }}));
      pb.Assign("joined", lang::Join(lang::Var("x"), lang::Var("ypairs")));
      pb.Assign("total", lang::Union(lang::Var("total"), lang::Var("joined")));
      pb.Assign("j", lang::Add(lang::Var("j"), lang::LitInt(1)));
    });
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::Var("total"), lang::LitString("out"));
  for (int machines : {1, 3}) {
    ExpectMitosMatchesReference(pb.Build(), inputs, machines);
  }
}

TEST(MitosExecutorTest, PipeliningOffMatchesReferenceToo) {
  sim::SimFileSystem inputs;
  inputs.Write("pageVisitLog1", Ints({1, 1, 2}));
  inputs.Write("pageVisitLog2", Ints({1, 2, 2}));
  inputs.Write("pageVisitLog3", Ints({3, 3}));
  lang::Program program = workloads::VisitCountProgram({.days = 3});
  ExecutorOptions options;
  options.pipelining = false;
  ExpectMitosMatchesReference(program, inputs, 3, options);
}

TEST(MitosExecutorTest, HoistingOffMatchesReferenceToo) {
  sim::SimFileSystem inputs;
  inputs.Write("pageVisitLog1", Ints({1, 1, 2}));
  inputs.Write("pageVisitLog2", Ints({1, 2, 2}));
  lang::Program program = workloads::VisitCountProgram({.days = 2});
  ExecutorOptions options;
  options.hoisting = false;
  ExpectMitosMatchesReference(program, inputs, 2, options);
}

TEST(MitosExecutorTest, MissingInputFileFailsCleanly) {
  ProgramBuilder pb;
  pb.Assign("b", lang::ReadFile(lang::LitString("missing")));
  pb.WriteFile(lang::Var("b"), lang::LitString("out"));
  sim::SimFileSystem fs;
  sim::Simulator sim;
  sim::Cluster cluster(&sim, {});
  MitosExecutor executor(&sim, &cluster, &fs);
  StatusOr<RunStats> stats = executor.Run(pb.Build());
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

TEST(MitosExecutorTest, RunawayLoopGuard) {
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(1'000'000)), [&] {
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  sim::SimFileSystem fs;
  sim::Simulator sim;
  sim::Cluster cluster(&sim, {});
  ExecutorOptions options;
  options.max_path_len = 50;
  MitosExecutor executor(&sim, &cluster, &fs, options);
  StatusOr<RunStats> stats = executor.Run(pb.Build());
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace mitos::runtime
