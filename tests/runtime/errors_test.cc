// Failure injection: runtime error paths must fail with a descriptive
// Status and a drained simulation — never a hang or a crash.
#include <gtest/gtest.h>

#include "lang/builder.h"
#include "runtime/executor.h"
#include "workloads/generators.h"

namespace mitos::runtime {
namespace {

StatusOr<RunStats> RunMitos(const lang::Program& program,
                            sim::SimFileSystem* fs, int machines = 3) {
  sim::Simulator sim;
  sim::ClusterConfig config;
  config.num_machines = machines;
  sim::Cluster cluster(&sim, config);
  MitosExecutor executor(&sim, &cluster, fs, {});
  return executor.Run(program);
}

TEST(RuntimeErrorsTest, MissingFileInsideLoopReportsNotFound) {
  sim::SimFileSystem fs;
  fs.Write("in1", {Datum::Int64(1)});
  // in2 missing: day 2 fails.
  lang::ProgramBuilder pb;
  pb.Assign("day", lang::LitInt(1));
  pb.DoWhile(
      [&] {
        pb.Assign("d", lang::ReadFile(lang::Concat(lang::LitString("in"),
                                                   lang::Var("day"))));
        pb.WriteFile(lang::Var("d"),
                     lang::Concat(lang::LitString("out"), lang::Var("day")));
        pb.Assign("day", lang::Add(lang::Var("day"), lang::LitInt(1)));
      },
      lang::Le(lang::Var("day"), lang::LitInt(3)));
  auto stats = RunMitos(pb.Build(), &fs);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
  EXPECT_NE(stats.status().message().find("in2"), std::string::npos);
}

TEST(RuntimeErrorsTest, MultiElementConditionBagFails) {
  // A user bag condition must hold exactly one element at decision time.
  lang::ProgramBuilder pb;
  pb.Assign("flags", lang::BagLit({Datum::Bool(true), Datum::Bool(false)}));
  pb.While(lang::Var("flags"), [&] {
    pb.Assign("flags", lang::Map(lang::Var("flags"), lang::fns::Identity()));
  });
  sim::SimFileSystem fs;
  auto stats = RunMitos(pb.Build(), &fs);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(stats.status().message().find("one-element"),
            std::string::npos);
}

TEST(RuntimeErrorsTest, NonBooleanConditionFails) {
  lang::ProgramBuilder pb;
  pb.Assign("n", lang::BagLit({Datum::Int64(7)}));
  pb.While(lang::Var("n"), [&] {
    pb.Assign("n", lang::Map(lang::Var("n"), lang::fns::AddInt64(-1)));
  });
  sim::SimFileSystem fs;
  auto stats = RunMitos(pb.Build(), &fs);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(RuntimeErrorsTest, NonStringFilenameFails) {
  lang::ProgramBuilder pb;
  pb.Assign("b", lang::BagLit({Datum::Int64(1)}));
  pb.Assign("name", lang::BagLit({Datum::Int64(42)}));  // not a string
  pb.WriteFile(lang::Var("b"), lang::Var("name"));
  sim::SimFileSystem fs;
  auto stats = RunMitos(pb.Build(), &fs);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(RuntimeErrorsTest, MultiElementFilenameBagFails) {
  lang::ProgramBuilder pb;
  pb.Assign("b", lang::BagLit({Datum::Int64(1)}));
  pb.Assign("names", lang::BagLit({Datum::String("a"), Datum::String("b")}));
  pb.WriteFile(lang::Var("b"), lang::Var("names"));
  sim::SimFileSystem fs;
  auto stats = RunMitos(pb.Build(), &fs);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(RuntimeErrorsTest, MultiElementReadFilenameFails) {
  sim::SimFileSystem fs;
  fs.Write("f", {Datum::Int64(1)});
  lang::ProgramBuilder pb;
  pb.Assign("names", lang::BagLit({Datum::String("f"), Datum::String("f")}));
  pb.Assign("d", lang::ReadFile(lang::ScalarFromBag(lang::Var("names"))));
  pb.WriteFile(lang::Var("d"), lang::LitString("out"));
  auto stats = RunMitos(pb.Build(), &fs);
  ASSERT_FALSE(stats.ok());
}

TEST(RuntimeErrorsTest, FailureDoesNotCorruptLaterRuns) {
  // After a failed job, a fresh executor on the same cluster-less setup
  // succeeds (no global state).
  sim::SimFileSystem fs;
  lang::ProgramBuilder bad;
  bad.Assign("d", lang::ReadFile(lang::LitString("missing")));
  bad.WriteFile(lang::Var("d"), lang::LitString("out"));
  auto failed = RunMitos(bad.Build(), &fs);
  ASSERT_FALSE(failed.ok());

  fs.Write("present", {Datum::Int64(5)});
  lang::ProgramBuilder good;
  good.Assign("d", lang::ReadFile(lang::LitString("present")));
  good.WriteFile(lang::Var("d"), lang::LitString("out"));
  auto ok = RunMitos(good.Build(), &fs);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ((*fs.Read("out"))[0].int64(), 5);
}

TEST(RuntimeErrorsTest, TypeErrorsAreCaughtBeforeExecution) {
  // Compile-time rejection: no simulation happens for ill-typed programs.
  lang::ProgramBuilder pb;
  pb.Assign("x", lang::LitInt(1));
  pb.Assign("y", lang::Map(lang::Var("x"), lang::fns::Identity()));
  sim::SimFileSystem fs;
  auto stats = RunMitos(pb.Build(), &fs);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mitos::runtime
