#include "runtime/translator.h"

#include <gtest/gtest.h>

#include "ir/ssa.h"
#include "lang/builder.h"
#include "workloads/programs.h"

namespace mitos::runtime {
namespace {

using dataflow::EdgeKind;
using dataflow::LogicalGraph;
using dataflow::LogicalNode;
using dataflow::NodeKind;

LogicalGraph TranslateProgram(const lang::Program& program, int machines) {
  auto ir = ir::CompileToIr(program);
  MITOS_CHECK(ir.ok()) << ir.status().ToString();
  auto result = Translate(*ir, machines);
  MITOS_CHECK(result.ok()) << result.status().ToString();
  return std::move(result->graph);
}

const LogicalNode* FindNode(const LogicalGraph& g, NodeKind kind,
                            int skip = 0) {
  for (const LogicalNode& n : g.nodes) {
    if (n.kind == kind && skip-- == 0) return &n;
  }
  return nullptr;
}

int CountNodes(const LogicalGraph& g, NodeKind kind) {
  int c = 0;
  for (const LogicalNode& n : g.nodes) {
    if (n.kind == kind) ++c;
  }
  return c;
}

TEST(TranslatorTest, OneNodePerStatementPlusConditions) {
  lang::ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.DoWhile(
      [&] { pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1))); },
      lang::Lt(lang::Var("i"), lang::LitInt(3)));
  LogicalGraph g = TranslateProgram(pb.Build(), 4);
  // One condition node (the loop's branch).
  EXPECT_EQ(CountNodes(g, NodeKind::kCondition), 1);
  // Φs for the loop-carried wrapped scalar.
  EXPECT_GE(CountNodes(g, NodeKind::kPhi), 1);
}

TEST(TranslatorTest, SingletonSpineGetsParallelismOne) {
  lang::ProgramBuilder pb;
  pb.Assign("day", lang::LitInt(1));
  pb.Assign("next", lang::Add(lang::Var("day"), lang::LitInt(1)));
  pb.Assign("big", lang::ReadFile(lang::LitString("f")));
  pb.Assign("mapped", lang::Map(lang::Var("big"), lang::fns::Identity()));
  LogicalGraph g = TranslateProgram(pb.Build(), 8);
  for (const LogicalNode& n : g.nodes) {
    if (n.singleton) {
      EXPECT_EQ(n.parallelism, 1) << n.name;
    }
  }
  const LogicalNode* read = FindNode(g, NodeKind::kReadFile);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->parallelism, 8);
  const LogicalNode* map = FindNode(g, NodeKind::kMap, /*skip=*/0);
  ASSERT_NE(map, nullptr);
}

TEST(TranslatorTest, ElementwiseOpsInheritProducerParallelism) {
  lang::ProgramBuilder pb;
  pb.Assign("big", lang::ReadFile(lang::LitString("f")));
  pb.Assign("m1", lang::Map(lang::Var("big"), lang::fns::Identity()));
  pb.Assign("m2", lang::Filter(lang::Var("m1"),
                               lang::fns::Int64ModEquals(2, 0)));
  LogicalGraph g = TranslateProgram(pb.Build(), 6);
  for (const LogicalNode& n : g.nodes) {
    if (n.kind == NodeKind::kMap || n.kind == NodeKind::kFilter) {
      EXPECT_EQ(n.parallelism, 6) << n.name;
      for (const auto& e : n.inputs) {
        EXPECT_EQ(e.kind, EdgeKind::kForward);
      }
    }
  }
}

TEST(TranslatorTest, ShuffleIntoKeyedOperators) {
  lang::ProgramBuilder pb;
  pb.Assign("big", lang::ReadFile(lang::LitString("f")));
  pb.Assign("pairs", lang::Map(lang::Var("big"), lang::fns::PairWithOne()));
  pb.Assign("counts", lang::ReduceByKey(lang::Var("pairs"),
                                        lang::fns::SumInt64()));
  pb.Assign("joined", lang::Join(lang::Var("counts"), lang::Var("pairs")));
  pb.Assign("uniq", lang::Distinct(lang::Var("big")));
  LogicalGraph g = TranslateProgram(pb.Build(), 4);

  const LogicalNode* rbk = FindNode(g, NodeKind::kReduceByKey);
  ASSERT_NE(rbk, nullptr);
  EXPECT_EQ(rbk->inputs[0].kind, EdgeKind::kShuffle);
  EXPECT_EQ(rbk->inputs[0].shuffle_key, dataflow::ShuffleKey::kField0);

  const LogicalNode* join = FindNode(g, NodeKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->inputs[0].kind, EdgeKind::kShuffle);
  EXPECT_EQ(join->inputs[1].kind, EdgeKind::kShuffle);

  const LogicalNode* distinct = FindNode(g, NodeKind::kDistinct);
  ASSERT_NE(distinct, nullptr);
  EXPECT_EQ(distinct->inputs[0].shuffle_key,
            dataflow::ShuffleKey::kWholeElement);
}

TEST(TranslatorTest, ReduceExpandsIntoLocalPlusFinal) {
  lang::ProgramBuilder pb;
  pb.Assign("big", lang::ReadFile(lang::LitString("f")));
  pb.Assign("total", lang::Reduce(lang::Var("big"), lang::fns::SumInt64()));
  pb.WriteFile(lang::Var("total"), lang::LitString("out"));
  LogicalGraph g = TranslateProgram(pb.Build(), 4);
  const LogicalNode* local = FindNode(g, NodeKind::kLocalReduce);
  const LogicalNode* final_node = FindNode(g, NodeKind::kFinalReduce);
  ASSERT_NE(local, nullptr);
  ASSERT_NE(final_node, nullptr);
  EXPECT_EQ(local->parallelism, 4);
  EXPECT_EQ(final_node->parallelism, 1);
  EXPECT_EQ(final_node->inputs[0].kind, EdgeKind::kGather);
  EXPECT_EQ(final_node->inputs[0].from, local->id);
  // The sink consumes the final node, not the partials.
  const LogicalNode* sink = FindNode(g, NodeKind::kWriteFile);
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->inputs[0].from, final_node->id);
}

TEST(TranslatorTest, FilenamesBroadcastToReaders) {
  lang::ProgramBuilder pb;
  pb.Assign("name", lang::LitString("f"));
  pb.Assign("big", lang::ReadFile(lang::Var("name")));
  pb.WriteFile(lang::Var("big"), lang::LitString("out"));
  LogicalGraph g = TranslateProgram(pb.Build(), 4);
  const LogicalNode* read = FindNode(g, NodeKind::kReadFile);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->inputs[0].kind, EdgeKind::kBroadcast);
  const LogicalNode* sink = FindNode(g, NodeKind::kWriteFile);
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->inputs[1].kind, EdgeKind::kBroadcast);
  EXPECT_EQ(sink->parallelism, 4);  // follows the data input
}

TEST(TranslatorTest, CrossBlockEdgesAreConditional) {
  lang::Program program = workloads::VisitCountProgram({.days = 3});
  LogicalGraph g = TranslateProgram(program, 4);
  int conditional = 0, unconditional = 0;
  for (const LogicalNode& n : g.nodes) {
    for (const auto& e : n.inputs) {
      const LogicalNode& from = g.node(e.from);
      if (from.block != n.block) {
        EXPECT_TRUE(e.conditional) << from.name << " -> " << n.name;
        ++conditional;
      } else {
        EXPECT_FALSE(e.conditional) << from.name << " -> " << n.name;
        ++unconditional;
      }
    }
  }
  EXPECT_GT(conditional, 0);
  EXPECT_GT(unconditional, 0);
}

TEST(TranslatorTest, ConditionNodesCarryBranchTargets) {
  lang::Program program = workloads::VisitCountProgram({.days = 3});
  auto ir = ir::CompileToIr(program);
  ASSERT_TRUE(ir.ok());
  auto result = Translate(*ir, 2);
  ASSERT_TRUE(result.ok());
  int conditions = 0;
  for (const LogicalNode& n : result->graph.nodes) {
    if (n.kind != NodeKind::kCondition) continue;
    ++conditions;
    EXPECT_NE(n.branch_true, ir::kNoBlock);
    EXPECT_NE(n.branch_false, ir::kNoBlock);
    EXPECT_EQ(n.parallelism, 1);
    // The condition's block is the block whose terminator it decides.
    EXPECT_EQ(ir->block(n.block).term.kind, ir::Terminator::Kind::kBranch);
  }
  EXPECT_EQ(conditions, 2);  // the if and the loop exit
}

TEST(TranslatorTest, PhiParallelismIsMaxOfInputs) {
  // yesterdayCounts: Φ of an empty literal (par 1) and the big counts
  // (par P) — must be par P with forward edges.
  lang::Program program = workloads::VisitCountProgram({.days = 3});
  LogicalGraph g = TranslateProgram(program, 5);
  bool found_data_phi = false;
  for (const LogicalNode& n : g.nodes) {
    if (n.kind != NodeKind::kPhi || n.singleton) continue;
    found_data_phi = true;
    EXPECT_EQ(n.parallelism, 5) << n.name;
  }
  EXPECT_TRUE(found_data_phi);
}

TEST(TranslatorTest, VarNodeMapCoversAllVariables) {
  lang::Program program = workloads::VisitCountProgram({.days = 3});
  auto ir = ir::CompileToIr(program);
  ASSERT_TRUE(ir.ok());
  auto result = Translate(*ir, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(static_cast<int>(result->var_node.size()), ir->num_vars());
}

}  // namespace
}  // namespace mitos::runtime
