// Step-template cache (DESIGN.md "Step templates"): validated replay of
// per-step control-plane decisions must be invisible in results — every
// test here pins templates-on against templates-off, byte for byte — and
// must never replay across control-flow divergence: flipping branches,
// nested loops with changing inner trip counts, and fault injection all
// have to produce the exact templates-off virtual timeline.
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "lang/builder.h"
#include "runtime/executor.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::runtime {
namespace {

struct Outcome {
  RunStats stats;
  std::map<std::string, DatumVector> files;
};

StatusOr<Outcome> RunProgram(const lang::Program& program,
                             const sim::SimFileSystem& inputs,
                             bool step_templates,
                             const sim::FaultPlan* faults = nullptr,
                             int machines = 4) {
  sim::SimFileSystem fs = inputs;
  api::RunConfig config;
  config.machines = machines;
  config.step_templates = step_templates;
  config.faults = faults;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
  MITOS_RETURN_IF_ERROR(result.status());
  Outcome outcome;
  outcome.stats = result->stats;
  for (const std::string& name : fs.ListFiles()) {
    if (inputs.Exists(name)) continue;  // compare outputs only
    outcome.files[name] = *fs.Read(name);
  }
  return outcome;
}

// Exact equality, element order included: replay must reconstruct the
// slow path's run, not just something equivalent.
void ExpectSameFiles(const Outcome& a, const Outcome& b) {
  ASSERT_EQ(a.files.size(), b.files.size());
  for (const auto& [name, data] : a.files) {
    auto it = b.files.find(name);
    ASSERT_TRUE(it != b.files.end()) << name;
    EXPECT_EQ(data, it->second) << name;
  }
}

// A loop whose if-branch flips every iteration: no two consecutive steps
// take the same decision, so no template may ever reach replayable state.
lang::Program FlippingIfProgram(int steps) {
  lang::ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.Assign("acc", lang::BagLit({Datum::Int64(0)}));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(steps)), [&] {
    pb.If(lang::Eq(lang::Mod(lang::Var("i"), lang::LitInt(2)),
                   lang::LitInt(0)),
          [&] {
            pb.Assign("acc",
                      lang::Map(lang::Var("acc"), lang::fns::AddInt64(1)));
          },
          [&] {
            pb.Assign("acc",
                      lang::Map(lang::Var("acc"), lang::fns::AddInt64(2)));
          });
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::Var("acc"), lang::LitString("out"));
  return pb.Build();
}

// Nested loops; the inner trip count is `1 + (i mod 2)` when alternating
// (so the step sequence never settles) or a constant when not.
lang::Program NestedLoopProgram(int outer, bool alternating, int inner) {
  lang::ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.Assign("acc", lang::BagLit({Datum::Int64(0)}));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(outer)), [&] {
    pb.Assign("j", lang::LitInt(0));
    if (alternating) {
      pb.Assign("trips", lang::Add(lang::LitInt(1),
                                   lang::Mod(lang::Var("i"),
                                             lang::LitInt(2))));
    } else {
      pb.Assign("trips", lang::LitInt(inner));
    }
    pb.While(lang::Lt(lang::Var("j"), lang::Var("trips")), [&] {
      pb.Assign("acc", lang::Map(lang::Var("acc"), lang::fns::AddInt64(1)));
      pb.Assign("j", lang::Add(lang::Var("j"), lang::LitInt(1)));
    });
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::Var("acc"), lang::LitString("out"));
  return pb.Build();
}

TEST(StepTemplateTest, SteadyLoopReplaysAndPreservesResults) {
  lang::Program program = workloads::StepOverheadProgram(30);
  auto off = RunProgram(program, {}, /*step_templates=*/false);
  auto on = RunProgram(program, {}, /*step_templates=*/true);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  // The loop repeats one decision 30 times; templates kick in after the
  // steady threshold and replay the rest.
  EXPECT_GT(on->stats.template_hits, 0);
  EXPECT_GT(on->stats.template_misses, 0);  // warm-up steps
  // Replay saves control-plane work, it never adds any.
  EXPECT_LT(on->stats.total_seconds, off->stats.total_seconds);
  // Same decisions, same bags, same bytes out.
  EXPECT_EQ(on->stats.decisions, off->stats.decisions);
  EXPECT_EQ(on->stats.bags, off->stats.bags);
  ExpectSameFiles(*off, *on);
}

TEST(StepTemplateTest, ReplayIsDeterministic) {
  lang::Program program = workloads::StepOverheadProgram(30);
  auto first = RunProgram(program, {}, /*step_templates=*/true);
  auto second = RunProgram(program, {}, /*step_templates=*/true);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->stats.total_seconds, second->stats.total_seconds);
  EXPECT_EQ(first->stats.template_hits, second->stats.template_hits);
  EXPECT_EQ(first->stats.template_misses, second->stats.template_misses);
  ExpectSameFiles(*first, *second);
}

TEST(StepTemplateTest, ValidatedReplayMatchesSlowPath) {
  // Paranoid mode re-derives every replayed decision through the slow path
  // and fails the run on any mismatch; a clean pass is a direct proof that
  // instantiated templates equal fresh derivations on this program.
  lang::Program program = workloads::StepOverheadProgram(30);
  sim::SimFileSystem fs;
  sim::Simulator sim;
  sim::ClusterConfig cluster_config;
  cluster_config.num_machines = 4;
  sim::Cluster cluster(&sim, cluster_config);
  ExecutorOptions options;
  options.step_templates = true;
  options.validate_templates = true;
  MitosExecutor executor(&sim, &cluster, &fs, options);
  auto stats = executor.Run(program);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->template_hits, 0);
}

TEST(StepTemplateTest, FlippingBranchNeverReplays) {
  lang::Program program = FlippingIfProgram(12);
  auto off = RunProgram(program, {}, /*step_templates=*/false);
  auto on = RunProgram(program, {}, /*step_templates=*/true);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_EQ(on->stats.template_hits, 0);
  EXPECT_GT(on->stats.template_invalidations, 0);
  // No replay anywhere means the timeline is the templates-off timeline,
  // to the last virtual nanosecond.
  EXPECT_EQ(on->stats.total_seconds, off->stats.total_seconds);
  ExpectSameFiles(*off, *on);
}

TEST(StepTemplateTest, NestedLoopChangingInnerTripsNeverReplays) {
  lang::Program program =
      NestedLoopProgram(/*outer=*/6, /*alternating=*/true, /*inner=*/0);
  auto off = RunProgram(program, {}, /*step_templates=*/false);
  auto on = RunProgram(program, {}, /*step_templates=*/true);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  // The 1,2,1,2 inner trip counts keep perturbing the step sequence before
  // any template reaches the steady threshold.
  EXPECT_EQ(on->stats.template_hits, 0);
  EXPECT_GT(on->stats.template_invalidations, 0);
  EXPECT_EQ(on->stats.total_seconds, off->stats.total_seconds);
  ExpectSameFiles(*off, *on);
}

TEST(StepTemplateTest, NestedLoopConstantInnerTripsReplays) {
  lang::Program program =
      NestedLoopProgram(/*outer=*/4, /*alternating=*/false, /*inner=*/8);
  auto off = RunProgram(program, {}, /*step_templates=*/false);
  auto on = RunProgram(program, {}, /*step_templates=*/true);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  // Long constant inner loops settle into runs of identical steps, which
  // do replay (mid-run), while every outer-step boundary invalidates.
  EXPECT_GT(on->stats.template_hits, 0);
  EXPECT_GT(on->stats.template_invalidations, 0);
  EXPECT_LE(on->stats.total_seconds, off->stats.total_seconds);
  EXPECT_EQ(on->stats.decisions, off->stats.decisions);
  ExpectSameFiles(*off, *on);
}

TEST(StepTemplateTest, CrashMidLoopIdenticalToTemplatesOff) {
  // Fault injection disables replay wholesale (recovery depends on
  // full-fidelity control messages and freshly derived step state), so a
  // faulted templates-on run must be event-identical to templates-off.
  sim::SimFileSystem inputs;
  workloads::GeneratePoints(&inputs, {.num_points = 2000,
                                      .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 4});

  auto fault_free = RunProgram(program, inputs, /*step_templates=*/true);
  ASSERT_TRUE(fault_free.ok()) << fault_free.status().ToString();
  const double crash_at =
      fault_free->stats.launch_seconds +
      0.4 * (fault_free->stats.total_seconds -
             fault_free->stats.launch_seconds);

  sim::FaultPlan plan;
  plan.crashes.push_back(
      {.machine = 1, .at = crash_at, .restart_after = 0.5});
  auto off = RunProgram(program, inputs, /*step_templates=*/false, &plan);
  auto on = RunProgram(program, inputs, /*step_templates=*/true, &plan);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_GE(on->stats.attempts, 2);
  EXPECT_EQ(on->stats.template_hits, 0);
  EXPECT_EQ(on->stats.total_seconds, off->stats.total_seconds);
  EXPECT_EQ(on->stats.attempts, off->stats.attempts);
  EXPECT_EQ(on->stats.recomputed_bags, off->stats.recomputed_bags);
  ExpectSameFiles(*off, *on);
  // And recovery itself still reconstructs the fault-free results.
  ExpectSameFiles(*fault_free, *on);
}

TEST(StepTemplateTest, BaselineEnginesIgnoreTheFlag) {
  // The flag is a Mitos control-plane feature; baseline engines must be
  // byte-identical with it on and off.
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = 6,
                                         .entries_per_day = 500,
                                         .num_pages = 50});
  lang::Program program = workloads::VisitCountProgram({.days = 6});
  for (api::EngineKind engine :
       {api::EngineKind::kSpark, api::EngineKind::kFlink}) {
    sim::SimFileSystem fs_on = inputs;
    sim::SimFileSystem fs_off = inputs;
    api::RunConfig config;
    config.machines = 3;
    config.step_templates = true;
    auto on = api::Run(engine, program, &fs_on, config);
    config.step_templates = false;
    auto off = api::Run(engine, program, &fs_off, config);
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    EXPECT_EQ(on->stats.total_seconds, off->stats.total_seconds)
        << api::EngineKindName(engine);
  }
}

}  // namespace
}  // namespace mitos::runtime
