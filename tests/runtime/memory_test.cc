// The discard rule (Sec. 5.2.4) in action: with it, the runtime's buffered
// memory stays bounded regardless of the iteration count; without it,
// spent bags accumulate forever.
#include <gtest/gtest.h>

#include "runtime/executor.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::runtime {
namespace {

RunStats RunVisitCount(int days, bool discard) {
  sim::SimFileSystem fs;
  workloads::GenerateVisitLogs(&fs, {.days = days, .entries_per_day = 400,
                                     .num_pages = 50});
  lang::Program program = workloads::VisitCountProgram({.days = days});
  sim::Simulator sim;
  sim::ClusterConfig config;
  config.num_machines = 3;
  sim::Cluster cluster(&sim, config);
  ExecutorOptions options;
  options.discard_spent_bags = discard;
  MitosExecutor executor(&sim, &cluster, &fs, options);
  auto stats = executor.Run(program);
  MITOS_CHECK(stats.ok()) << stats.status().ToString();
  return *stats;
}

TEST(MemoryTest, DiscardRuleBoundsBufferedMemory) {
  RunStats short_run = RunVisitCount(4, /*discard=*/true);
  RunStats long_run = RunVisitCount(24, /*discard=*/true);
  ASSERT_GT(short_run.peak_buffered_bytes, 0);
  // 6x the steps must not mean 6x the memory: steady-state peak is bounded
  // by a few in-flight steps, not the loop length.
  EXPECT_LT(long_run.peak_buffered_bytes,
            short_run.peak_buffered_bytes * 3);
}

TEST(MemoryTest, WithoutDiscardMemoryGrowsWithIterationCount) {
  RunStats short_run = RunVisitCount(4, /*discard=*/false);
  RunStats long_run = RunVisitCount(24, /*discard=*/false);
  // Spent bags accumulate: 6x the steps is roughly 6x the buffered data.
  EXPECT_GT(long_run.peak_buffered_bytes,
            short_run.peak_buffered_bytes * 3);
}

TEST(MemoryTest, DiscardDoesNotChangeResults) {
  sim::SimFileSystem fs_a, fs_b;
  workloads::GenerateVisitLogs(&fs_a, {.days = 6, .entries_per_day = 300,
                                       .num_pages = 30});
  workloads::GenerateVisitLogs(&fs_b, {.days = 6, .entries_per_day = 300,
                                       .num_pages = 30});
  lang::Program program = workloads::VisitCountProgram({.days = 6});
  for (bool discard : {true, false}) {
    sim::SimFileSystem* fs = discard ? &fs_a : &fs_b;
    sim::Simulator sim;
    sim::ClusterConfig config;
    config.num_machines = 3;
    sim::Cluster cluster(&sim, config);
    ExecutorOptions options;
    options.discard_spent_bags = discard;
    MitosExecutor executor(&sim, &cluster, fs, options);
    auto stats = executor.Run(program);
    ASSERT_TRUE(stats.ok());
  }
  for (const std::string& name : fs_a.ListFiles()) {
    EXPECT_EQ(*fs_a.Read(name), *fs_b.Read(name)) << name;
  }
}

TEST(MemoryTest, HoistingKeepsInvariantBagCachedButBounded) {
  sim::SimFileSystem fs;
  workloads::GenerateVisitLogs(&fs, {.days = 10, .entries_per_day = 200,
                                     .num_pages = 500});
  workloads::GeneratePageTypes(&fs, {.num_pages = 500, .num_types = 2});
  lang::Program program = workloads::VisitCountProgram(
      {.days = 10, .with_diffs = false, .with_page_types = true});
  sim::Simulator sim;
  sim::ClusterConfig config;
  config.num_machines = 2;
  sim::Cluster cluster(&sim, config);
  MitosExecutor executor(&sim, &cluster, &fs, {});
  auto stats = executor.Run(program);
  ASSERT_TRUE(stats.ok());
  // The invariant dataset (~500 pairs * 20 B = ~10 KB) is cached once at
  // the join; total peak stays within a small multiple of the inputs.
  EXPECT_GT(stats->peak_buffered_bytes, 5'000);
  EXPECT_LT(stats->peak_buffered_bytes, 2'000'000);
}

}  // namespace
}  // namespace mitos::runtime
