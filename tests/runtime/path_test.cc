#include "runtime/path.h"

#include <gtest/gtest.h>

#include "ir/ssa.h"
#include "lang/builder.h"

namespace mitos::runtime {
namespace {

TEST(ExecutionPathTest, AppendAndQuery) {
  ExecutionPath path;
  EXPECT_EQ(path.size(), 0);
  path.Append(1);
  path.Append(2);
  path.Append(1);
  EXPECT_EQ(path.size(), 3);
  EXPECT_EQ(path.at(0), 1);
  EXPECT_EQ(path.at(2), 1);
  EXPECT_FALSE(path.complete());
  path.MarkComplete();
  EXPECT_TRUE(path.complete());
}

TEST(ExecutionPathTest, LongestPrefixEndingWith) {
  // The paper's Fig. 4a walk: path ABBABBB -> for a bag computed with path
  // length 7, the x-input (block A) chooses the prefix ending at the
  // *latest* A, i.e. length 4 (ABBA).
  ExecutionPath path;
  const ir::BlockId A = 0, B = 1;
  for (ir::BlockId b : {A, B, B, A, B, B, B}) path.Append(b);
  EXPECT_EQ(path.LongestPrefixEndingWith(A, 7), 4);
  EXPECT_EQ(path.LongestPrefixEndingWith(B, 7), 7);
  EXPECT_EQ(path.LongestPrefixEndingWith(B, 4), 3);
  EXPECT_EQ(path.LongestPrefixEndingWith(A, 3), 1);
  EXPECT_EQ(path.LongestPrefixEndingWith(99, 7), 0);  // never occurred
  // max_len caps the search even past the real size.
  EXPECT_EQ(path.LongestPrefixEndingWith(B, 100), 7);
}

TEST(ControlFlowManagerTest, AdvancesInOrderAndNotifiesOncePerPosition) {
  ExecutionPath path;
  path.Append(5);
  path.Append(6);
  path.Append(7);
  ControlFlowManager cfm(&path);
  std::vector<std::pair<int, ir::BlockId>> seen;
  cfm.AddListener([&](int pos, ir::BlockId b) { seen.emplace_back(pos, b); });
  cfm.AdvanceTo(2, false);
  EXPECT_EQ(cfm.known_len(), 2);
  cfm.AdvanceTo(3, false);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<int, ir::BlockId>{0, 5}));
  EXPECT_EQ(seen[2], (std::pair<int, ir::BlockId>{2, 7}));
}

TEST(ControlFlowManagerTest, OutOfOrderDeliveriesAreIdempotent) {
  ExecutionPath path;
  path.Append(1);
  path.Append(2);
  ControlFlowManager cfm(&path);
  int notifications = 0;
  cfm.AddListener([&](int, ir::BlockId) { ++notifications; });
  cfm.AdvanceTo(2, false);
  cfm.AdvanceTo(1, false);  // late, shorter message: no-op
  cfm.AdvanceTo(2, false);  // duplicate: no-op
  EXPECT_EQ(notifications, 2);
}

TEST(ControlFlowManagerTest, ListenerMayReenterAdvanceTo) {
  // Regression: a listener reacting to position p can synchronously learn
  // the next decision (zero intervening simulated work) and call AdvanceTo
  // again. This used to abort on a re-entrancy CHECK; now the nested call
  // queues and the outermost invocation drains it, in order.
  ExecutionPath path;
  path.Append(1);
  path.Append(2);
  path.Append(3);
  ControlFlowManager cfm(&path);
  std::vector<int> seen;
  cfm.AddListener([&](int pos, ir::BlockId) {
    seen.push_back(pos);
    if (pos == 0) cfm.AdvanceTo(3, false);  // nested, from inside a callback
  });
  cfm.AdvanceTo(1, false);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(cfm.known_len(), 3);
}

TEST(ControlFlowManagerTest, ReentrantCompletionDelivers) {
  ExecutionPath path;
  path.Append(1);
  path.Append(2);
  path.MarkComplete();
  ControlFlowManager cfm(&path);
  int completions = 0;
  cfm.AddListener([&](int pos, ir::BlockId) {
    if (pos == 0) cfm.AdvanceTo(2, true);
  });
  cfm.AddCompletionListener([&] { ++completions; });
  cfm.AdvanceTo(1, false);
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(cfm.known_complete());
}

TEST(ControlFlowManagerTest, CompletionFiresOnceAtFullLength) {
  ExecutionPath path;
  path.Append(1);
  path.MarkComplete();
  ControlFlowManager cfm(&path);
  int completions = 0;
  cfm.AddCompletionListener([&] { ++completions; });
  cfm.AdvanceTo(1, true);
  cfm.AdvanceTo(1, true);
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(cfm.known_complete());
}

// ----- PathAuthority over a real compiled program -----

class PathAuthorityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // do { x = x+1 } while (x < 3): entry -> body(+branch) -> after.
    lang::ProgramBuilder pb;
    pb.Assign("x", lang::LitInt(0));
    pb.DoWhile(
        [&] { pb.Assign("x", lang::Add(lang::Var("x"), lang::LitInt(1))); },
        lang::Lt(lang::Var("x"), lang::LitInt(3)));
    auto ir = ir::CompileToIr(pb.Build());
    MITOS_CHECK(ir.ok());
    program_ = std::make_unique<ir::Program>(std::move(ir).value());

    sim::ClusterConfig config;
    config.num_machines = 3;
    cluster_ = std::make_unique<sim::Cluster>(&sim_, config);
    backend_ = std::make_unique<DesBackend>(&sim_, cluster_.get());
    for (int m = 0; m < 3; ++m) {
      managers_.push_back(std::make_unique<ControlFlowManager>(&path_));
    }
  }

  PathAuthority MakeAuthority(PathAuthority::Options options) {
    std::vector<ControlFlowManager*> ptrs;
    for (auto& m : managers_) ptrs.push_back(m.get());
    return PathAuthority(program_.get(), backend_.get(), &path_, ptrs,
                         options, [this](Status s) { error_ = s; });
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<DesBackend> backend_;
  std::unique_ptr<ir::Program> program_;
  ExecutionPath path_;
  std::vector<std::unique_ptr<ControlFlowManager>> managers_;
  Status error_;
};

TEST_F(PathAuthorityTest, StartAppendsEntryChain) {
  PathAuthority authority = MakeAuthority({});
  authority.Start(0);
  sim_.Run();
  // Entry (block 0) jumps unconditionally into the loop body (block 1):
  // both appear immediately.
  EXPECT_EQ(path_.size(), 2);
  EXPECT_EQ(path_.at(0), 0);
  EXPECT_EQ(path_.at(1), 1);
  // All managers catch up after the broadcast drains.
  for (auto& m : managers_) EXPECT_EQ(m->known_len(), 2);
}

TEST_F(PathAuthorityTest, DecisionsExtendThePath) {
  PathAuthority authority = MakeAuthority({});
  authority.Start(0);
  sim_.Run();
  authority.OnDecision(/*block=*/1, /*at_len=*/2, /*value=*/true, 1);
  sim_.Run();
  EXPECT_EQ(path_.size(), 3);
  EXPECT_EQ(path_.at(2), 1);  // looped back into the body
  authority.OnDecision(1, 3, false, 2);
  sim_.Run();
  EXPECT_TRUE(path_.complete());
  EXPECT_EQ(authority.decisions(), 2);
  for (auto& m : managers_) EXPECT_TRUE(m->known_complete());
}

TEST_F(PathAuthorityTest, RemoteManagersLagByNetworkLatency) {
  PathAuthority authority = MakeAuthority({});
  authority.Start(/*machine=*/1);
  // Before the simulator runs, only the authority's local manager knows.
  EXPECT_EQ(managers_[1]->known_len(), 2);
  EXPECT_EQ(managers_[0]->known_len(), 0);
  EXPECT_EQ(managers_[2]->known_len(), 0);
  sim_.Run();
  EXPECT_EQ(managers_[0]->known_len(), 2);
  EXPECT_GT(sim_.now(), 0.0);  // broadcast took network time
}

TEST_F(PathAuthorityTest, OutOfOrderDecisionFails) {
  PathAuthority authority = MakeAuthority({});
  authority.Start(0);
  sim_.Run();
  authority.OnDecision(1, 5, true, 0);  // path is only 2 long
  EXPECT_FALSE(error_.ok());
}

TEST_F(PathAuthorityTest, MaxPathLenGuard) {
  PathAuthority::Options options;
  options.max_path_len = 3;
  PathAuthority authority = MakeAuthority(options);
  authority.Start(0);
  sim_.Run();
  authority.OnDecision(1, 2, true, 0);
  sim_.Run();
  authority.OnDecision(1, 3, true, 0);  // would exceed 3
  EXPECT_FALSE(error_.ok());
  EXPECT_EQ(error_.code(), StatusCode::kFailedPrecondition);
}

TEST_F(PathAuthorityTest, BarrierModeDefersDecisionBroadcastUntilIdle) {
  PathAuthority::Options options;
  options.pipelining = false;
  PathAuthority authority = MakeAuthority(options);
  authority.Start(0);
  sim_.Run();
  // A decision while other work is still queued: the broadcast must wait
  // for global quiescence (the superstep barrier). The initial Start
  // broadcast, by contrast, is not barriered.
  double decision_seen_at = -1;
  managers_[0]->AddListener([this, &decision_seen_at](int pos, ir::BlockId) {
    if (pos >= 2) decision_seen_at = sim_.now();
  });
  double t0 = sim_.now();
  bool other_ran = false;
  sim_.Schedule(t0 + 0.5, [&] { other_ran = true; });
  authority.OnDecision(1, 2, true, 0);
  sim_.Run();
  EXPECT_TRUE(other_ran);
  EXPECT_GE(decision_seen_at, t0 + 0.5);
}

TEST_F(PathAuthorityTest, DecisionOverheadDelaysBroadcast) {
  PathAuthority::Options options;
  options.decision_overhead = 0.25;
  PathAuthority authority = MakeAuthority(options);
  authority.Start(0);
  sim_.Run();
  double t0 = sim_.now();
  double decision_seen_at = -1;
  managers_[0]->AddListener([this, &decision_seen_at](int pos, ir::BlockId) {
    if (pos >= 2) decision_seen_at = sim_.now();
  });
  authority.OnDecision(1, 2, true, 0);
  sim_.Run();
  EXPECT_GE(decision_seen_at, t0 + 0.25);
}

TEST_F(PathAuthorityTest, DecisionInNonBranchBlockReportsErrorNotAbort) {
  // Regression: a decision arriving for a block whose terminator is not a
  // conditional branch used to hit a MITOS_CHECK (process abort). It is a
  // runtime-reachable inconsistency, so it must surface as a Status.
  PathAuthority authority = MakeAuthority({});
  authority.Start(0);
  sim_.Run();
  // Block 0 is the entry block: its terminator is an unconditional jump.
  authority.OnDecision(/*block=*/0, /*at_len=*/path_.size(), true, 0);
  EXPECT_FALSE(error_.ok());
  EXPECT_EQ(error_.code(), StatusCode::kInternal);
}

TEST_F(PathAuthorityTest, UnackedBroadcastToDeadMachineFailsUnavailable) {
  // With a fault plan active the authority requires acks: a machine that is
  // down for the whole retry window makes the broadcast fail with
  // kUnavailable (the heartbeat/attempt loop above then handles recovery).
  sim::FaultPlan plan;
  plan.crashes.push_back({.machine = 2, .at = 0.0});  // down from t=0 on
  plan.retry_backoff = 0.01;
  plan.max_broadcast_retries = 3;
  cluster_->InstallFaultPlan(&plan);
  PathAuthority::Options options;
  options.faults = &plan;
  PathAuthority authority = MakeAuthority(options);
  authority.Start(0);
  sim_.Run();
  EXPECT_FALSE(error_.ok());
  EXPECT_EQ(error_.code(), StatusCode::kUnavailable);
  // The up machines still learned the path.
  EXPECT_EQ(managers_[0]->known_len(), 2);
  EXPECT_EQ(managers_[1]->known_len(), 2);
  EXPECT_EQ(managers_[2]->known_len(), 0);
}

TEST_F(PathAuthorityTest, AckedBroadcastsDoNotRetryOrError) {
  sim::FaultPlan plan;
  plan.drop_probability = 1e-12;  // non-empty plan, but nothing drops
  plan.retry_backoff = 0.01;
  cluster_->InstallFaultPlan(&plan);
  PathAuthority::Options options;
  options.faults = &plan;
  PathAuthority authority = MakeAuthority(options);
  authority.Start(0);
  sim_.Run();
  EXPECT_TRUE(error_.ok()) << error_.ToString();
  for (auto& m : managers_) EXPECT_EQ(m->known_len(), 2);
}

TEST_F(PathAuthorityTest, InitialBroadcastIsNotBarriered) {
  PathAuthority::Options options;
  options.pipelining = false;
  options.decision_overhead = 10.0;
  PathAuthority authority = MakeAuthority(options);
  authority.Start(0);
  // Local manager knows immediately, without barrier or overhead.
  EXPECT_EQ(managers_[0]->known_len(), 2);
}

}  // namespace
}  // namespace mitos::runtime
