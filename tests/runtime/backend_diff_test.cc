// Differential suite: the real-parallel threads backend against the DES
// oracle. Both run the SAME operator kernels, PathAuthority decisions, and
// step templates behind the runtime::Backend seam — so for every figure
// workload and every hostile-control-flow program, the two must agree
// element-for-element on outputs and exactly on the control-plane counters
// (decisions, bags, elements, template hits/misses/invalidations).
//
// What is deliberately NOT compared: virtual vs wall time (different
// clocks by construction) and the cluster byte/message tallies (chunk
// flushing under real concurrency packs elements into different chunk
// boundaries than the simulated schedule — same data, different framing).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "api/engine.h"
#include "lang/builder.h"
#include "sim/fault.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::api {
namespace {

// Everything the two backends must agree on, bit for bit.
struct Outcome {
  int decisions = 0;
  int64_t bags = 0;
  int64_t elements = 0;
  int attempts = 0;
  int64_t template_hits = 0;
  int64_t template_misses = 0;
  int64_t template_invalidations = 0;
  std::map<std::string, DatumVector> files;
};

Outcome RunOn(BackendKind backend, EngineKind engine,
              const lang::Program& program, const sim::SimFileSystem& inputs,
              int machines, bool step_templates = true) {
  sim::SimFileSystem fs = inputs;  // fresh, identically seeded filesystem
  RunConfig config{.machines = machines};
  config.backend = backend;
  config.step_templates = step_templates;
  auto result = api::Run(engine, program, &fs, config);
  MITOS_CHECK(result.ok()) << result.status().ToString();
  Outcome outcome;
  outcome.decisions = result->stats.decisions;
  outcome.bags = result->stats.bags;
  outcome.elements = result->stats.elements;
  outcome.attempts = result->stats.attempts;
  outcome.template_hits = result->stats.template_hits;
  outcome.template_misses = result->stats.template_misses;
  outcome.template_invalidations = result->stats.template_invalidations;
  for (const std::string& name : fs.ListFiles()) {
    outcome.files[name] = *fs.Read(name);
  }
  return outcome;
}

// Exact equality — including element ORDER inside every output file, which
// AppendOutput canonicalizes (partitions ordered by instance id) precisely
// so this comparison is meaningful under real concurrency.
void ExpectEquivalent(const Outcome& des, const Outcome& threads) {
  EXPECT_EQ(des.decisions, threads.decisions);
  EXPECT_EQ(des.bags, threads.bags);
  EXPECT_EQ(des.elements, threads.elements);
  EXPECT_EQ(des.attempts, threads.attempts);
  EXPECT_EQ(des.template_hits, threads.template_hits);
  EXPECT_EQ(des.template_misses, threads.template_misses);
  EXPECT_EQ(des.template_invalidations, threads.template_invalidations);
  ASSERT_EQ(des.files.size(), threads.files.size());
  for (const auto& [name, data] : des.files) {
    auto it = threads.files.find(name);
    ASSERT_TRUE(it != threads.files.end()) << name;
    EXPECT_EQ(data, it->second) << name;
  }
}

void ExpectBackendsAgree(EngineKind engine, const lang::Program& program,
                         const sim::SimFileSystem& inputs, int machines,
                         bool step_templates = true) {
  ExpectEquivalent(
      RunOn(BackendKind::kDes, engine, program, inputs, machines,
            step_templates),
      RunOn(BackendKind::kThreads, engine, program, inputs, machines,
            step_templates));
}

// --- hostile control flow (same shapes as the step-template suite) ---

// If-branch flips every iteration: no step is ever replayable, and the
// threads backend must take the exact same miss/invalidation path.
lang::Program FlippingIfProgram(int steps) {
  lang::ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.Assign("acc", lang::BagLit({Datum::Int64(0)}));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(steps)), [&] {
    pb.If(lang::Eq(lang::Mod(lang::Var("i"), lang::LitInt(2)),
                   lang::LitInt(0)),
          [&] {
            pb.Assign("acc",
                      lang::Map(lang::Var("acc"), lang::fns::AddInt64(1)));
          },
          [&] {
            pb.Assign("acc",
                      lang::Map(lang::Var("acc"), lang::fns::AddInt64(2)));
          });
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::Var("acc"), lang::LitString("out"));
  return pb.Build();
}

// Nested loops; alternating inner trip count (1 + i mod 2) keeps the step
// sequence from ever settling into a template.
lang::Program NestedLoopProgram(int outer, bool alternating, int inner) {
  lang::ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.Assign("acc", lang::BagLit({Datum::Int64(0)}));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(outer)), [&] {
    pb.Assign("j", lang::LitInt(0));
    if (alternating) {
      pb.Assign("trips", lang::Add(lang::LitInt(1),
                                   lang::Mod(lang::Var("i"),
                                             lang::LitInt(2))));
    } else {
      pb.Assign("trips", lang::LitInt(inner));
    }
    pb.While(lang::Lt(lang::Var("j"), lang::Var("trips")), [&] {
      pb.Assign("acc", lang::Map(lang::Var("acc"), lang::fns::AddInt64(1)));
      pb.Assign("j", lang::Add(lang::Var("j"), lang::LitInt(1)));
    });
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::Var("acc"), lang::LitString("out"));
  return pb.Build();
}

// --- figure workloads ---

TEST(BackendDiffTest, Fig7StepOverheadLoop) {
  sim::SimFileSystem inputs;
  lang::Program program = workloads::StepOverheadProgram(30);
  ExpectBackendsAgree(EngineKind::kMitos, program, inputs, 4);
}

TEST(BackendDiffTest, Fig8VisitCount) {
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = 8, .entries_per_day = 1000,
                                         .num_pages = 60});
  lang::Program program = workloads::VisitCountProgram({.days = 8});
  ExpectBackendsAgree(EngineKind::kMitos, program, inputs, 4);
}

TEST(BackendDiffTest, Fig9KMeans) {
  sim::SimFileSystem inputs;
  workloads::GeneratePoints(&inputs, {.num_points = 2000, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 4});
  ExpectBackendsAgree(EngineKind::kMitos, program, inputs, 4);
}

TEST(BackendDiffTest, PageRank) {
  sim::SimFileSystem inputs;
  workloads::GenerateGraph(&inputs, {.num_vertices = 200, .num_edges = 800});
  lang::Program program =
      workloads::PageRankProgram({.iterations = 5, .num_vertices = 200});
  ExpectBackendsAgree(EngineKind::kMitos, program, inputs, 4);
}

TEST(BackendDiffTest, ConnectedComponents) {
  sim::SimFileSystem inputs;
  workloads::GenerateGraph(&inputs, {.num_vertices = 150, .num_edges = 400});
  lang::Program program = workloads::ConnectedComponentsProgram();
  ExpectBackendsAgree(EngineKind::kMitos, program, inputs, 4);
}

// --- hostile control flow ---

TEST(BackendDiffTest, HostileFlippingBranch) {
  sim::SimFileSystem inputs;
  lang::Program program = FlippingIfProgram(16);
  ExpectBackendsAgree(EngineKind::kMitos, program, inputs, 8);
}

TEST(BackendDiffTest, HostileAlternatingNestedLoop) {
  sim::SimFileSystem inputs;
  lang::Program program =
      NestedLoopProgram(/*outer=*/6, /*alternating=*/true, /*inner=*/0);
  ExpectBackendsAgree(EngineKind::kMitos, program, inputs, 4);
}

TEST(BackendDiffTest, SteadyNestedLoopReplays) {
  sim::SimFileSystem inputs;
  lang::Program program =
      NestedLoopProgram(/*outer=*/4, /*alternating=*/false, /*inner=*/8);
  Outcome des = RunOn(BackendKind::kDes, EngineKind::kMitos, program, inputs,
                      4);
  Outcome threads = RunOn(BackendKind::kThreads, EngineKind::kMitos, program,
                          inputs, 4);
  ExpectEquivalent(des, threads);
  // The point of the steady shape: the template cache actually engages, and
  // it engages IDENTICALLY under real concurrency.
  EXPECT_GT(threads.template_hits, 0);
}

// --- engine ablations through the seam ---

TEST(BackendDiffTest, AblationsAgreeOnVisitCount) {
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = 5, .entries_per_day = 500,
                                         .num_pages = 40});
  lang::Program program = workloads::VisitCountProgram({.days = 5});
  ExpectBackendsAgree(EngineKind::kMitosNoPipelining, program, inputs, 4);
  ExpectBackendsAgree(EngineKind::kMitosNoHoisting, program, inputs, 4);
}

TEST(BackendDiffTest, TemplatesOffAgreesToo) {
  sim::SimFileSystem inputs;
  lang::Program program = workloads::StepOverheadProgram(20);
  Outcome des = RunOn(BackendKind::kDes, EngineKind::kMitos, program, inputs,
                      4, /*step_templates=*/false);
  Outcome threads = RunOn(BackendKind::kThreads, EngineKind::kMitos, program,
                          inputs, 4, /*step_templates=*/false);
  ExpectEquivalent(des, threads);
  EXPECT_EQ(threads.template_hits, 0);
  EXPECT_EQ(threads.template_misses, 0);
}

// --- determinism framing ---

// The DES is the oracle precisely because repeated runs are bit-identical;
// the threads backend must be result-deterministic even though its wall
// times are not.
TEST(BackendDiffTest, RepeatedRunsAgreeOnBothBackends) {
  sim::SimFileSystem inputs;
  workloads::GeneratePoints(&inputs, {.num_points = 1500, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 3});
  Outcome des1 = RunOn(BackendKind::kDes, EngineKind::kMitos, program, inputs,
                       4);
  Outcome des2 = RunOn(BackendKind::kDes, EngineKind::kMitos, program, inputs,
                       4);
  ExpectEquivalent(des1, des2);
  Outcome thr1 = RunOn(BackendKind::kThreads, EngineKind::kMitos, program,
                       inputs, 4);
  Outcome thr2 = RunOn(BackendKind::kThreads, EngineKind::kMitos, program,
                       inputs, 4);
  ExpectEquivalent(thr1, thr2);
  ExpectEquivalent(des1, thr1);
}

// More machines than the default, so cross-machine chunk interleaving under
// real concurrency gets a real workout.
TEST(BackendDiffTest, EightMachines) {
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = 6, .entries_per_day = 800,
                                         .num_pages = 50});
  lang::Program program = workloads::VisitCountProgram({.days = 6});
  ExpectBackendsAgree(EngineKind::kMitos, program, inputs, 8);
}

// --- guard rails ---

TEST(BackendDiffTest, ThreadsRejectsNonMitosEngines) {
  sim::SimFileSystem fs;
  workloads::GenerateVisitLogs(&fs, {.days = 2, .entries_per_day = 100,
                                     .num_pages = 10});
  lang::Program program = workloads::VisitCountProgram({.days = 2});
  RunConfig config;
  config.backend = BackendKind::kThreads;
  for (EngineKind engine : {EngineKind::kFlink, EngineKind::kSpark,
                            EngineKind::kNaiad, EngineKind::kTensorFlow,
                            EngineKind::kFlinkSeparateJobs}) {
    auto result = api::Run(engine, program, &fs, config);
    EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented)
        << EngineKindName(engine);
  }
}

TEST(BackendDiffTest, ThreadsRejectsFaultPlans) {
  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 200, .num_clusters = 2});
  lang::Program program = workloads::KMeansProgram({.iterations = 2});
  auto plan = sim::FaultPlan::Parse("crash=1@0.5+0.5");
  ASSERT_TRUE(plan.ok());
  RunConfig config;
  config.backend = BackendKind::kThreads;
  config.faults = &*plan;
  auto result = api::Run(EngineKind::kMitos, program, &fs, config);
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(BackendDiffTest, ReferenceInterpreterIgnoresBackend) {
  sim::SimFileSystem fs;
  workloads::GenerateVisitLogs(&fs, {.days = 2, .entries_per_day = 100,
                                     .num_pages = 10});
  lang::Program program = workloads::VisitCountProgram({.days = 2});
  RunConfig config;
  config.backend = BackendKind::kThreads;
  auto result = api::Run(EngineKind::kReference, program, &fs, config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

}  // namespace
}  // namespace mitos::api
