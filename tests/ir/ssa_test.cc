#include "ir/ssa.h"

#include <gtest/gtest.h>

#include "ir/cfg.h"
#include "ir/verify.h"
#include "lang/builder.h"

namespace mitos::ir {
namespace {

using lang::ProgramBuilder;

DatumVector Ints(std::initializer_list<int64_t> values) {
  DatumVector out;
  for (int64_t v : values) out.push_back(Datum::Int64(v));
  return out;
}

// Counts statements of a kind across all blocks.
int CountOps(const Program& p, OpKind op) {
  int n = 0;
  for (const BasicBlock& b : p.blocks) {
    for (const Stmt& s : b.stmts) {
      if (s.op == op) ++n;
    }
  }
  return n;
}

TEST(SsaTest, StraightLineProgram) {
  ProgramBuilder pb;
  pb.Assign("b", lang::BagLit(Ints({1, 2})));
  pb.Assign("m", lang::Map(lang::Var("b"), lang::fns::AddInt64(1)));
  pb.WriteFile(lang::Var("m"), lang::LitString("out"));
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok()) << ir.status().ToString();
  EXPECT_TRUE(Verify(*ir).ok()) << Verify(*ir).ToString();
  // Single block (entry), exit terminator, no Φ.
  ASSERT_GE(ir->num_blocks(), 1);
  EXPECT_EQ(CountOps(*ir, OpKind::kPhi), 0);
  // writeFile filename got wrapped: bagLit for "out".
  EXPECT_EQ(CountOps(*ir, OpKind::kWriteFile), 1);
}

TEST(SsaTest, DoWhileLoopCreatesPhisInBodyHead) {
  // The paper's Figure 3 shape: do-while with loop-carried day +
  // yesterday bags.
  ProgramBuilder pb;
  pb.Assign("yesterday", lang::BagLit({}));
  pb.Assign("day", lang::LitInt(1));
  pb.DoWhile(
      [&] {
        pb.Assign("yesterday", lang::Map(lang::Var("yesterday"),
                                         lang::fns::Identity()));
        pb.Assign("day", lang::Add(lang::Var("day"), lang::LitInt(1)));
      },
      lang::Le(lang::Var("day"), lang::LitInt(3)));
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok()) << ir.status().ToString();
  Status v = Verify(*ir);
  ASSERT_TRUE(v.ok()) << v.ToString() << "\n" << ToString(*ir);

  // Loop-carried Φs: yesterday and day (the condition temp is computed from
  // day inside the body, so only these two are carried).
  EXPECT_EQ(CountOps(*ir, OpKind::kPhi), 2);

  // The body's first block must start with the Φs and be the target of a
  // back-edge branch.
  bool found_backedge = false;
  for (const BasicBlock& b : ir->blocks) {
    if (b.term.kind == Terminator::Kind::kBranch) {
      const BasicBlock& target = ir->block(b.term.target);
      if (!target.stmts.empty() && target.stmts[0].op == OpKind::kPhi) {
        found_backedge = true;
      }
    }
  }
  EXPECT_TRUE(found_backedge);
}

TEST(SsaTest, PhiInputsAreInitAndBackedge) {
  ProgramBuilder pb;
  pb.Assign("x", lang::LitInt(0));
  pb.DoWhile(
      [&] { pb.Assign("x", lang::Add(lang::Var("x"), lang::LitInt(1))); },
      lang::Lt(lang::Var("x"), lang::LitInt(3)));
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  const Stmt* phi = nullptr;
  for (const BasicBlock& b : ir->blocks) {
    for (const Stmt& s : b.stmts) {
      if (s.op == OpKind::kPhi) phi = &s;
    }
  }
  ASSERT_NE(phi, nullptr);
  ASSERT_EQ(phi->inputs.size(), 2u);
  // Init comes from the entry block; back-edge input from the body.
  EXPECT_EQ(ir->var(phi->inputs[0]).def_block, 0);
  EXPECT_NE(ir->var(phi->inputs[1]).def_block, 0);
  // Both sides are wrapped scalars -> Φ is singleton.
  EXPECT_TRUE(ir->var(phi->result).singleton);
}

TEST(SsaTest, IfElseCreatesJoinPhi) {
  ProgramBuilder pb;
  pb.Assign("c", lang::LitBool(true));
  pb.Assign("a", lang::LitInt(0));
  pb.If(lang::Var("c"), [&] { pb.Assign("a", lang::LitInt(1)); },
        [&] { pb.Assign("a", lang::LitInt(2)); });
  pb.WriteFile(lang::FromScalar(lang::Var("a")), lang::LitString("out"));
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  Status v = Verify(*ir);
  ASSERT_TRUE(v.ok()) << v.ToString() << "\n" << ToString(*ir);
  EXPECT_EQ(CountOps(*ir, OpKind::kPhi), 1);
  // 4 blocks: entry, then, else, join.
  EXPECT_EQ(ir->num_blocks(), 4);
}

TEST(SsaTest, IfWithoutElseBranchesToJoin) {
  ProgramBuilder pb;
  pb.Assign("c", lang::LitBool(false));
  pb.Assign("a", lang::LitInt(0));
  pb.If(lang::Var("c"), [&] { pb.Assign("a", lang::LitInt(1)); });
  pb.WriteFile(lang::FromScalar(lang::Var("a")), lang::LitString("out"));
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  ASSERT_TRUE(Verify(*ir).ok());
  EXPECT_EQ(CountOps(*ir, OpKind::kPhi), 1);  // merge of pre-if and then-def
  // Entry branches to then-block and join-block directly.
  const Terminator& term = ir->block(0).term;
  ASSERT_EQ(term.kind, Terminator::Kind::kBranch);
  const BasicBlock& then_block = ir->block(term.target);
  EXPECT_EQ(then_block.term.kind, Terminator::Kind::kJump);
  EXPECT_EQ(then_block.term.target, term.target_else);
}

TEST(SsaTest, UnchangedVariableNeedsNoPhiAtIfJoin) {
  ProgramBuilder pb;
  pb.Assign("c", lang::LitBool(true));
  pb.Assign("keep", lang::LitInt(7));
  pb.Assign("a", lang::LitInt(0));
  pb.If(lang::Var("c"), [&] { pb.Assign("a", lang::LitInt(1)); },
        [&] { pb.Assign("a", lang::LitInt(2)); });
  pb.Assign("b", lang::Add(lang::Var("keep"), lang::Var("a")));
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  ASSERT_TRUE(Verify(*ir).ok());
  EXPECT_EQ(CountOps(*ir, OpKind::kPhi), 1);  // only `a`
}

TEST(SsaTest, NestedLoopsVerify) {
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.Assign("acc", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(3)), [&] {
    pb.Assign("j", lang::LitInt(0));
    pb.While(lang::Lt(lang::Var("j"), lang::LitInt(2)), [&] {
      pb.Assign("acc", lang::Add(lang::Var("acc"), lang::LitInt(1)));
      pb.Assign("j", lang::Add(lang::Var("j"), lang::LitInt(1)));
    });
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok()) << ir.status().ToString();
  Status v = Verify(*ir);
  EXPECT_TRUE(v.ok()) << v.ToString() << "\n" << ToString(*ir);
}

TEST(SsaTest, VisitCountDiffMatchesPaperShape) {
  // Build the paper's running example and compare against the structure of
  // Figure 3: a do-while whose body splits into 4 logical regions, Φs for
  // yesterdayCnts and day, a branch on the wrapped ifCond, and a back-edge
  // branch on the wrapped exitCond.
  ProgramBuilder pb;
  pb.Assign("yesterdayCnts", lang::BagLit({}));
  pb.Assign("day", lang::LitInt(1));
  pb.DoWhile(
      [&] {
        pb.Assign("fileName", lang::Concat(lang::LitString("pageVisitLog"),
                                           lang::Var("day")));
        pb.Assign("visits", lang::ReadFile(lang::Var("fileName")));
        pb.Assign("visitsMapped",
                  lang::Map(lang::Var("visits"), lang::fns::PairWithOne()));
        pb.Assign("counts", lang::ReduceByKey(lang::Var("visitsMapped"),
                                              lang::fns::SumInt64()));
        pb.If(lang::Ne(lang::Var("day"), lang::LitInt(1)), [&] {
          pb.Assign(
              "joinedYesterday",
              lang::Join(lang::Var("yesterdayCnts"), lang::Var("counts")));
          pb.Assign("diffs", lang::Map(lang::Var("joinedYesterday"),
                                       lang::fns::AbsDiffFields12()));
          pb.Assign("summed",
                    lang::Reduce(lang::Var("diffs"), lang::fns::SumInt64()));
          pb.Assign("outFileName",
                    lang::Concat(lang::LitString("diff"), lang::Var("day")));
          pb.WriteFile(lang::Var("summed"), lang::Var("outFileName"));
        });
        pb.Assign("yesterdayCnts", lang::Var("counts"));
        pb.Assign("day", lang::Add(lang::Var("day"), lang::LitInt(1)));
      },
      lang::Le(lang::Var("day"), lang::LitInt(365)));
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok()) << ir.status().ToString();
  Status v = Verify(*ir);
  ASSERT_TRUE(v.ok()) << v.ToString() << "\n" << ToString(*ir);

  // Φs for yesterdayCnts and day at the body head (paper lines 4-5).
  EXPECT_EQ(CountOps(*ir, OpKind::kPhi), 2);
  // Two conditional branches: the if and the loop exit.
  int branches = 0;
  for (const BasicBlock& b : ir->blocks) {
    if (b.term.kind == Terminator::Kind::kBranch) ++branches;
  }
  EXPECT_EQ(branches, 2);
  // 5 blocks: entry, body-head, if-then, if-join(latch), after.
  EXPECT_EQ(ir->num_blocks(), 5);
  EXPECT_EQ(CountOps(*ir, OpKind::kReadFile), 1);
  EXPECT_EQ(CountOps(*ir, OpKind::kJoin), 1);
  EXPECT_EQ(CountOps(*ir, OpKind::kWriteFile), 1);

  // The day Φ is singleton, the yesterdayCnts Φ is not.
  for (const BasicBlock& b : ir->blocks) {
    for (const Stmt& s : b.stmts) {
      if (s.op != OpKind::kPhi) continue;
      const std::string& name = ir->var(s.result).name;
      if (name.rfind("day", 0) == 0) {
        EXPECT_TRUE(ir->var(s.result).singleton) << name;
      } else {
        EXPECT_FALSE(ir->var(s.result).singleton) << name;
      }
    }
  }
}

TEST(SsaTest, WhileLoopHasHeaderBlockWithPhisAndBranch) {
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(3)), [&] {
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  ASSERT_TRUE(Verify(*ir).ok()) << ToString(*ir);
  // Entry jumps to a header that only holds Φs and branches body/after.
  const BasicBlock& entry = ir->block(0);
  ASSERT_EQ(entry.term.kind, Terminator::Kind::kJump);
  const BasicBlock& header = ir->block(entry.term.target);
  ASSERT_EQ(header.term.kind, Terminator::Kind::kBranch);
  for (const Stmt& s : header.stmts) EXPECT_EQ(s.op, OpKind::kPhi);
}

TEST(SsaTest, RejectsNonNormalizedInput) {
  ProgramBuilder pb;
  pb.Assign("b", lang::BagLit(Ints({1})));
  pb.Assign("r", lang::Map(lang::Map(lang::Var("b"), lang::fns::Identity()),
                           lang::fns::Identity()));
  auto ir = BuildSsa(pb.Build(), {});
  ASSERT_FALSE(ir.ok());
  EXPECT_EQ(ir.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SsaTest, SingletonPropagatesThroughReduceAndCombine) {
  ProgramBuilder pb;
  pb.Assign("big", lang::BagLit(Ints({1, 2, 3, 4})));
  pb.Assign("r", lang::Reduce(lang::Var("big"), lang::fns::SumInt64()));
  pb.Assign("n", lang::Count(lang::Var("big")));
  pb.Assign("c", lang::Combine2(lang::Var("r"), lang::Var("n"),
                                lang::fns::SumInt64()));
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  for (const BasicBlock& b : ir->blocks) {
    for (const Stmt& s : b.stmts) {
      if (s.result == kNoVar) continue;
      const VarInfo& info = ir->var(s.result);
      if (info.name.rfind("big", 0) == 0) {
        EXPECT_FALSE(info.singleton);
      } else {
        EXPECT_TRUE(info.singleton) << info.name;
      }
    }
  }
}

}  // namespace
}  // namespace mitos::ir
