#include "ir/normalize.h"

#include <gtest/gtest.h>

#include "lang/builder.h"
#include "lang/interpreter.h"

namespace mitos::ir {
namespace {

using lang::Program;
using lang::ProgramBuilder;

DatumVector Ints(std::initializer_list<int64_t> values) {
  DatumVector out;
  for (int64_t v : values) out.push_back(Datum::Int64(v));
  return out;
}

// Runs both the original and the normalized program in the reference
// interpreter and expects identical file outputs.
void ExpectSameFileOutputs(const Program& original,
                           const sim::SimFileSystem& inputs) {
  auto normalized = Normalize(original);
  ASSERT_TRUE(normalized.ok()) << normalized.status().ToString();
  ASSERT_TRUE(IsNormalized(normalized->program))
      << lang::ToString(normalized->program);

  sim::SimFileSystem fs_a = inputs;
  sim::SimFileSystem fs_b = inputs;
  lang::Interpreter interp_a(&fs_a);
  lang::Interpreter interp_b(&fs_b);
  ASSERT_TRUE(interp_a.Run(original).ok());
  Status status_b = interp_b.Run(normalized->program);
  ASSERT_TRUE(status_b.ok()) << status_b.ToString() << "\nnormalized:\n"
                             << lang::ToString(normalized->program);

  EXPECT_EQ(fs_a.ListFiles(), fs_b.ListFiles());
  for (const std::string& name : fs_a.ListFiles()) {
    EXPECT_EQ(*fs_a.Read(name), *fs_b.Read(name)) << "file " << name;
  }
}

TEST(NormalizeTest, SplitsChainedBagOps) {
  ProgramBuilder pb;
  pb.Assign("b", lang::BagLit(Ints({1, 2, 3})));
  pb.Assign("r", lang::Filter(lang::Map(lang::Var("b"), lang::fns::AddInt64(1)),
                              lang::fns::Int64ModEquals(2, 0)));
  auto result = Normalize(pb.Build());
  ASSERT_TRUE(result.ok());
  // b = bagLit; _t1 = b.map; r = _t1.filter  => 3 statements.
  EXPECT_EQ(result->program.stmts.size(), 3u);
  EXPECT_TRUE(IsNormalized(result->program));
}

TEST(NormalizeTest, WrapsScalarsIntoSingletonBags) {
  ProgramBuilder pb;
  pb.Assign("day", lang::LitInt(1));
  pb.Assign("next", lang::Add(lang::Var("day"), lang::LitInt(1)));
  auto result = Normalize(pb.Build());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->singleton_vars.count("day") > 0);
  EXPECT_TRUE(result->singleton_vars.count("next") > 0);
  // day = bagLit([1]); next = day.map(x -> x+1): literal folded into the
  // closure, no combine2 needed (paper's Fig. 3 day3 node).
  EXPECT_EQ(result->program.stmts.size(), 2u);
  EXPECT_EQ(result->program.stmts[1]->expr->kind, lang::ExprKind::kMap);
}

TEST(NormalizeTest, TwoVariableScalarExprBecomesCombine2) {
  ProgramBuilder pb;
  pb.Assign("a", lang::LitInt(1));
  pb.Assign("b", lang::LitInt(2));
  pb.Assign("c", lang::Add(lang::Var("a"), lang::Var("b")));
  auto result = Normalize(pb.Build());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->program.stmts[2]->expr->kind, lang::ExprKind::kCombine2);
}

TEST(NormalizeTest, ConstantFoldsLiteralBinOps) {
  ProgramBuilder pb;
  pb.Assign("x", lang::Add(lang::LitInt(2), lang::LitInt(3)));
  auto result = Normalize(pb.Build());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->program.stmts.size(), 1u);
  const lang::Expr& rhs = *result->program.stmts[0]->expr;
  ASSERT_EQ(rhs.kind, lang::ExprKind::kBagLit);
  EXPECT_EQ(rhs.bag_lit, Ints({5}));
}

TEST(NormalizeTest, WhileConditionRecomputedAtBodyEnd) {
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(3)), [&] {
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  auto result = Normalize(pb.Build());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Find the while statement; its condition must be a VarRef, and the same
  // variable must be assigned both before the loop and at the body's end.
  const lang::Stmt* loop = nullptr;
  for (const auto& s : result->program.stmts) {
    if (s->kind == lang::StmtKind::kWhile) loop = s.get();
  }
  ASSERT_NE(loop, nullptr);
  ASSERT_EQ(loop->expr->kind, lang::ExprKind::kVarRef);
  const std::string cond_var = loop->expr->var;
  EXPECT_EQ(loop->body.back()->kind, lang::StmtKind::kAssign);
  EXPECT_EQ(loop->body.back()->var, cond_var);
}

TEST(NormalizeTest, CopyAssignmentBecomesIdentityMap) {
  ProgramBuilder pb;
  pb.Assign("a", lang::BagLit(Ints({1})));
  pb.Assign("b", lang::Var("a"));
  auto result = Normalize(pb.Build());
  ASSERT_TRUE(result.ok());
  const lang::Expr& rhs = *result->program.stmts[1]->expr;
  EXPECT_EQ(rhs.kind, lang::ExprKind::kMap);
  EXPECT_EQ(rhs.unary.name, "identity");
}

TEST(NormalizeTest, IsNormalizedRejectsNestedExpressions) {
  ProgramBuilder pb;
  pb.Assign("b", lang::BagLit(Ints({1})));
  pb.Assign("r", lang::Map(lang::Map(lang::Var("b"), lang::fns::Identity()),
                           lang::fns::Identity()));
  EXPECT_FALSE(IsNormalized(pb.Build()));
}

TEST(NormalizeTest, PreservesSemanticsScalarLoop) {
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.Assign("acc", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(10)), [&] {
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
    pb.Assign("acc", lang::Add(lang::Var("acc"), lang::Var("i")));
  });
  pb.WriteFile(lang::FromScalar(lang::Var("acc")), lang::LitString("out"));
  ExpectSameFileOutputs(pb.Build(), sim::SimFileSystem());
}

TEST(NormalizeTest, PreservesSemanticsVisitCountDiff) {
  sim::SimFileSystem inputs;
  inputs.Write("pageVisitLog1", Ints({1, 1, 2}));
  inputs.Write("pageVisitLog2", Ints({1, 2, 2}));
  inputs.Write("pageVisitLog3", Ints({2, 2, 2}));

  ProgramBuilder pb;
  pb.Assign("yesterday", lang::BagLit({}));
  pb.Assign("day", lang::LitInt(1));
  pb.DoWhile(
      [&] {
        pb.Assign("visits", lang::ReadFile(lang::Concat(
                                lang::LitString("pageVisitLog"),
                                lang::Var("day"))));
        pb.Assign("counts",
                  lang::ReduceByKey(lang::Map(lang::Var("visits"),
                                              lang::fns::PairWithOne()),
                                    lang::fns::SumInt64()));
        pb.If(lang::Ne(lang::Var("day"), lang::LitInt(1)), [&] {
          pb.Assign("joined",
                    lang::Join(lang::Var("yesterday"), lang::Var("counts")));
          pb.Assign("diffs", lang::Map(lang::Var("joined"),
                                       lang::fns::AbsDiffFields12()));
          pb.Assign("summed",
                    lang::Reduce(lang::Var("diffs"), lang::fns::SumInt64()));
          pb.WriteFile(lang::Var("summed"),
                       lang::Concat(lang::LitString("diff"), lang::Var("day")));
        });
        pb.Assign("yesterday", lang::Var("counts"));
        pb.Assign("day", lang::Add(lang::Var("day"), lang::LitInt(1)));
      },
      lang::Le(lang::Var("day"), lang::LitInt(3)));
  ExpectSameFileOutputs(pb.Build(), inputs);
}

TEST(NormalizeTest, PreservesSemanticsNestedLoopsAndIf) {
  sim::SimFileSystem inputs;
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.Assign("total", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(4)), [&] {
    pb.Assign("j", lang::LitInt(0));
    pb.While(lang::Lt(lang::Var("j"), lang::Var("i")), [&] {
      pb.If(lang::Eq(lang::Mod(lang::Var("j"), lang::LitInt(2)),
                     lang::LitInt(0)),
            [&] { pb.Assign("total", lang::Add(lang::Var("total"),
                                               lang::Var("j"))); },
            [&] { pb.Assign("total", lang::Sub(lang::Var("total"),
                                               lang::LitInt(1))); });
      pb.Assign("j", lang::Add(lang::Var("j"), lang::LitInt(1)));
    });
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::FromScalar(lang::Var("total")), lang::LitString("out"));
  ExpectSameFileOutputs(pb.Build(), inputs);
}

TEST(NormalizeTest, PreservesSemanticsBagConditionLoop) {
  sim::SimFileSystem inputs;
  ProgramBuilder pb;
  pb.Assign("vals", lang::BagLit(Ints({6})));
  pb.While(lang::Gt(lang::ScalarFromBag(lang::Var("vals")), lang::LitInt(0)),
           [&] {
             pb.Assign("vals", lang::Map(lang::Var("vals"),
                                         lang::fns::AddInt64(-2)));
           });
  pb.WriteFile(lang::Var("vals"), lang::LitString("out"));
  ExpectSameFileOutputs(pb.Build(), inputs);
}

TEST(NormalizeTest, RejectsIllTypedProgram) {
  ProgramBuilder pb;
  pb.Assign("x", lang::Add(lang::Var("nope"), lang::LitInt(1)));
  EXPECT_FALSE(Normalize(pb.Build()).ok());
}

}  // namespace
}  // namespace mitos::ir
