#include "ir/dce.h"

#include <gtest/gtest.h>

#include "ir/ssa.h"
#include "ir/verify.h"
#include "lang/builder.h"

namespace mitos::ir {
namespace {

int TotalStmts(const Program& p) {
  int n = 0;
  for (const BasicBlock& b : p.blocks) n += static_cast<int>(b.stmts.size());
  return n;
}

int CountOps(const Program& p, OpKind op) {
  int n = 0;
  for (const BasicBlock& b : p.blocks) {
    for (const Stmt& s : b.stmts) {
      if (s.op == op) ++n;
    }
  }
  return n;
}

TEST(DceTest, RemovesUnobservedComputation) {
  lang::ProgramBuilder pb;
  pb.Assign("used", lang::BagLit({Datum::Int64(1)}));
  pb.Assign("dead", lang::Map(lang::Var("used"), lang::fns::AddInt64(1)));
  pb.Assign("deader", lang::Map(lang::Var("dead"), lang::fns::AddInt64(1)));
  pb.WriteFile(lang::Var("used"), lang::LitString("out"));
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  auto result = EliminateDeadCode(*ir);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // dead + deader go; used + the wrapped filename stay.
  EXPECT_EQ(result->removed_stmts, 2);
  EXPECT_TRUE(Verify(result->program).ok())
      << Verify(result->program).ToString();
  EXPECT_EQ(CountOps(result->program, OpKind::kWriteFile), 1);
}

TEST(DceTest, KeepsConditionChains) {
  lang::ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(3)), [&] {
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  auto result = EliminateDeadCode(*ir);
  ASSERT_TRUE(result.ok());
  // The whole program is the condition chain: nothing removable except
  // possibly nothing at all.
  EXPECT_TRUE(Verify(result->program).ok());
  // The loop must still branch on a condition computed from i.
  bool found_branch = false;
  for (const BasicBlock& b : result->program.blocks) {
    if (b.term.kind == Terminator::Kind::kBranch) found_branch = true;
  }
  EXPECT_TRUE(found_branch);
}

TEST(DceTest, RemovesDeadLoopPhis) {
  // `unused` is loop-carried but never observed: its Φ and updates go.
  lang::ProgramBuilder pb;
  pb.Assign("unused", lang::BagLit({Datum::Int64(0)}));
  pb.Assign("kept", lang::BagLit({Datum::Int64(0)}));
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(3)), [&] {
    pb.Assign("unused", lang::Map(lang::Var("unused"),
                                  lang::fns::AddInt64(1)));
    pb.Assign("kept", lang::Map(lang::Var("kept"), lang::fns::AddInt64(1)));
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::Var("kept"), lang::LitString("out"));
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  int phis_before = CountOps(*ir, OpKind::kPhi);
  auto result = EliminateDeadCode(*ir);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Verify(result->program).ok());
  EXPECT_LT(CountOps(result->program, OpKind::kPhi), phis_before);
  EXPECT_GE(result->removed_stmts, 3);  // unused's init, Φ, and update
}

TEST(DceTest, NoopOnFullyLiveProgram) {
  lang::ProgramBuilder pb;
  pb.Assign("a", lang::BagLit({Datum::Int64(1)}));
  pb.Assign("b", lang::Map(lang::Var("a"), lang::fns::AddInt64(1)));
  pb.WriteFile(lang::Var("b"), lang::LitString("out"));
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  int before = TotalStmts(*ir);
  auto result = EliminateDeadCode(*ir);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->removed_stmts, 0);
  EXPECT_EQ(TotalStmts(result->program), before);
}

TEST(DceTest, ProgramWithNoSinksKeepsOnlyControlFlow) {
  lang::ProgramBuilder pb;
  pb.Assign("a", lang::BagLit({Datum::Int64(1)}));
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(2)), [&] {
    pb.Assign("a", lang::Map(lang::Var("a"), lang::fns::AddInt64(1)));
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  auto result = EliminateDeadCode(*ir);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Verify(result->program).ok());
  // The bag `a` is unobserved: all of its statements are gone.
  for (const BasicBlock& b : result->program.blocks) {
    for (const Stmt& s : b.stmts) {
      EXPECT_NE(result->program.var(s.result).name.rfind("a", 0), 0u)
          << "statement for 'a' survived";
    }
  }
}

}  // namespace
}  // namespace mitos::ir
