#include "ir/verify.h"

#include <gtest/gtest.h>

#include "ir/ssa.h"
#include "lang/builder.h"

namespace mitos::ir {
namespace {

// Compiles a known-good program, then lets tests break it.
Program GoodProgram() {
  lang::ProgramBuilder pb;
  pb.Assign("x", lang::LitInt(0));
  pb.DoWhile(
      [&] { pb.Assign("x", lang::Add(lang::Var("x"), lang::LitInt(1))); },
      lang::Lt(lang::Var("x"), lang::LitInt(3)));
  pb.WriteFile(lang::FromScalar(lang::Var("x")), lang::LitString("out"));
  auto ir = CompileToIr(pb.Build());
  MITOS_CHECK(ir.ok());
  return std::move(ir).value();
}

TEST(VerifyTest, AcceptsCompilerOutput) {
  Program p = GoodProgram();
  EXPECT_TRUE(Verify(p).ok()) << Verify(p).ToString();
}

TEST(VerifyTest, RejectsInvalidJumpTarget) {
  Program p = GoodProgram();
  for (BasicBlock& b : p.blocks) {
    if (b.term.kind == Terminator::Kind::kJump) {
      b.term.target = 99;
      break;
    }
  }
  EXPECT_FALSE(Verify(p).ok());
}

TEST(VerifyTest, RejectsDoubleDefinition) {
  Program p = GoodProgram();
  // Duplicate the first defining statement.
  Stmt copy = p.blocks[0].stmts[0];
  p.blocks[0].stmts.push_back(copy);
  EXPECT_FALSE(Verify(p).ok());
}

TEST(VerifyTest, RejectsDefSiteMismatch) {
  Program p = GoodProgram();
  p.vars[static_cast<size_t>(p.blocks[0].stmts[0].result)].def_index = 7;
  EXPECT_FALSE(Verify(p).ok());
}

TEST(VerifyTest, RejectsArityViolation) {
  Program p = GoodProgram();
  for (BasicBlock& b : p.blocks) {
    for (Stmt& s : b.stmts) {
      if (s.op == OpKind::kMap) {
        s.inputs.push_back(s.inputs[0]);  // map with 2 inputs
        EXPECT_FALSE(Verify(p).ok());
        return;
      }
    }
  }
  FAIL() << "no map statement found";
}

TEST(VerifyTest, RejectsUseBeforeDefInSameBlock) {
  Program p = GoodProgram();
  // Swap the first two statements of a block where the second uses the
  // first.
  for (BasicBlock& b : p.blocks) {
    if (b.stmts.size() >= 2 && !b.stmts[1].inputs.empty() &&
        b.stmts[1].inputs[0] == b.stmts[0].result) {
      std::swap(b.stmts[0], b.stmts[1]);
      // Fix up recorded def sites so only the ordering is broken.
      for (size_t i = 0; i < b.stmts.size(); ++i) {
        if (b.stmts[i].result != kNoVar) {
          p.vars[static_cast<size_t>(b.stmts[i].result)].def_index =
              static_cast<int>(i);
        }
      }
      EXPECT_FALSE(Verify(p).ok());
      return;
    }
  }
  GTEST_SKIP() << "no suitable statement pair";
}

TEST(VerifyTest, RejectsPhiWithOneInput) {
  Program p = GoodProgram();
  for (BasicBlock& b : p.blocks) {
    for (Stmt& s : b.stmts) {
      if (s.op == OpKind::kPhi) {
        s.inputs.resize(1);
        EXPECT_FALSE(Verify(p).ok());
        return;
      }
    }
  }
  FAIL() << "no phi found";
}

TEST(VerifyTest, RejectsNonSingletonLiteralBranchCondition) {
  Program p = GoodProgram();
  // Find the branch, redirect its condition to a fresh 2-element literal.
  Stmt lit;
  lit.op = OpKind::kBagLit;
  lit.bag_lit = {Datum::Bool(true), Datum::Bool(false)};
  VarInfo info;
  info.name = "badcond";
  info.def_block = 0;
  info.def_index = static_cast<int>(p.blocks[0].stmts.size());
  info.singleton = false;
  lit.result = static_cast<VarId>(p.vars.size());
  p.vars.push_back(info);
  p.blocks[0].stmts.push_back(lit);
  bool patched = false;
  for (BasicBlock& b : p.blocks) {
    if (b.term.kind == Terminator::Kind::kBranch) {
      b.term.cond = lit.result;
      patched = true;
    }
  }
  ASSERT_TRUE(patched);
  EXPECT_FALSE(Verify(p).ok());
}

TEST(VerifyTest, RejectsEmptyProgram) {
  Program p;
  EXPECT_FALSE(Verify(p).ok());
}

}  // namespace
}  // namespace mitos::ir
