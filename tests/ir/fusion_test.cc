#include "ir/fusion.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "ir/ssa.h"
#include "ir/verify.h"
#include "lang/builder.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::ir {
namespace {

int TotalStmts(const Program& p) {
  int n = 0;
  for (const BasicBlock& b : p.blocks) n += static_cast<int>(b.stmts.size());
  return n;
}

TEST(FusionTest, FusesMapChains) {
  lang::ProgramBuilder pb;
  pb.Assign("b", lang::BagLit({Datum::Int64(1), Datum::Int64(2)}));
  pb.Assign("r", lang::Map(lang::Map(lang::Map(lang::Var("b"),
                                               lang::fns::AddInt64(1)),
                                     lang::fns::AddInt64(2)),
                           lang::fns::AddInt64(3)));
  pb.WriteFile(lang::Var("r"), lang::LitString("out"));
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  auto fused = FuseElementwise(*ir);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_EQ(fused->fused_stmts, 2);  // three maps become one flatMap
  EXPECT_TRUE(Verify(fused->program).ok())
      << Verify(fused->program).ToString();
  EXPECT_EQ(TotalStmts(fused->program), TotalStmts(*ir) - 2);
}

TEST(FusionTest, FusedChainComputesSameResult) {
  lang::ProgramBuilder pb;
  pb.Assign("b", lang::BagLit({Datum::Int64(1), Datum::Int64(2),
                               Datum::Int64(3), Datum::Int64(4)}));
  pb.Assign("r",
            lang::Filter(lang::Map(lang::Var("b"), lang::fns::AddInt64(1)),
                         lang::fns::Int64ModEquals(2, 1)));
  pb.WriteFile(lang::Var("r"), lang::LitString("out"));
  lang::Program program = pb.Build();

  sim::SimFileSystem fs_plain, fs_fused;
  {
    sim::Simulator sim;
    sim::Cluster cluster(&sim, {});
    runtime::MitosExecutor executor(&sim, &cluster, &fs_plain, {});
    ASSERT_TRUE(executor.Run(program).ok());
  }
  {
    sim::Simulator sim;
    sim::Cluster cluster(&sim, {});
    runtime::ExecutorOptions options;
    options.operator_fusion = true;
    runtime::MitosExecutor executor(&sim, &cluster, &fs_fused, options);
    ASSERT_TRUE(executor.Run(program).ok());
  }
  auto sorted = [](DatumVector v) {
    std::sort(v.begin(), v.end(),
              [](const Datum& a, const Datum& b) { return a < b; });
    return v;
  };
  EXPECT_EQ(sorted(*fs_plain.Read("out")), sorted(*fs_fused.Read("out")));
}

TEST(FusionTest, SharedIntermediateIsNotFused) {
  lang::ProgramBuilder pb;
  pb.Assign("b", lang::BagLit({Datum::Int64(1)}));
  pb.Assign("mid", lang::Map(lang::Var("b"), lang::fns::AddInt64(1)));
  pb.Assign("r1", lang::Map(lang::Var("mid"), lang::fns::AddInt64(2)));
  pb.Assign("r2", lang::Map(lang::Var("mid"), lang::fns::AddInt64(3)));
  pb.WriteFile(lang::Var("r1"), lang::LitString("out1"));
  pb.WriteFile(lang::Var("r2"), lang::LitString("out2"));
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  auto fused = FuseElementwise(*ir);
  ASSERT_TRUE(fused.ok());
  // `mid` feeds two consumers: it must survive as a node.
  EXPECT_EQ(fused->fused_stmts, 0);
}

TEST(FusionTest, CrossBlockChainsAreNotFused) {
  // A map whose producer lives in a different basic block (conditional
  // edge semantics) must not be merged across the boundary.
  lang::ProgramBuilder pb;
  pb.Assign("b", lang::BagLit({Datum::Int64(1)}));
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(2)), [&] {
    pb.Assign("b", lang::Map(lang::Var("b"), lang::fns::AddInt64(1)));
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::Var("b"), lang::LitString("out"));
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  auto fused = FuseElementwise(*ir);
  ASSERT_TRUE(fused.ok());
  EXPECT_TRUE(Verify(fused->program).ok());
  // The Φ -> map edge crosses from the header/body boundary handling; the
  // loop body's map consumes the Φ (not elementwise) — whatever fuses, the
  // program must stay runnable and correct:
  sim::SimFileSystem fs;
  sim::Simulator sim;
  sim::Cluster cluster(&sim, {});
  runtime::ExecutorOptions options;
  options.operator_fusion = true;
  runtime::MitosExecutor executor(&sim, &cluster, &fs, options);
  ASSERT_TRUE(executor.Run(pb.Build()).ok());
  EXPECT_EQ((*fs.Read("out"))[0].int64(), 3);
}

TEST(FusionTest, VisitCountWithFusionMatchesReference) {
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = 5, .entries_per_day = 400,
                                         .num_pages = 40});
  lang::Program program = workloads::VisitCountProgram({.days = 5});

  sim::SimFileSystem fs_ref = inputs;
  ASSERT_TRUE(
      api::Run(api::EngineKind::kReference, program, &fs_ref).ok());

  sim::SimFileSystem fs = inputs;
  sim::Simulator sim;
  sim::ClusterConfig config;
  config.num_machines = 4;
  sim::Cluster cluster(&sim, config);
  runtime::ExecutorOptions options;
  options.operator_fusion = true;
  runtime::MitosExecutor executor(&sim, &cluster, &fs, options);
  auto stats = executor.Run(program);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  auto sorted = [](DatumVector v) {
    std::sort(v.begin(), v.end(),
              [](const Datum& a, const Datum& b) { return a < b; });
    return v;
  };
  ASSERT_EQ(fs_ref.ListFiles(), fs.ListFiles());
  for (const std::string& name : fs_ref.ListFiles()) {
    EXPECT_EQ(sorted(*fs_ref.Read(name)), sorted(*fs.Read(name))) << name;
  }
}

TEST(FusionTest, NoFusablePairsInCanonicalVisitCount) {
  // Every elementwise op in Visit Count consumes a non-elementwise
  // producer (readFile, reduceByKey, join, Φ): fusion must be a no-op.
  auto ir = CompileToIr(workloads::VisitCountProgram({.days = 3}));
  ASSERT_TRUE(ir.ok());
  auto fused = FuseElementwise(*ir);
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(fused->fused_stmts, 0);
}

TEST(FusionTest, FusionReducesCoordinatedBags) {
  // A loop whose body is a long elementwise chain: fusion collapses the
  // chain's interior, removing per-iteration bag coordination.
  lang::ProgramBuilder pb;
  pb.Assign("data", lang::BagLit({Datum::Int64(1), Datum::Int64(2),
                                  Datum::Int64(3)}));
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(8)), [&] {
    pb.Assign("data",
              lang::Map(lang::Map(lang::Map(lang::Map(lang::Var("data"),
                                                      lang::fns::AddInt64(1)),
                                            lang::fns::AddInt64(2)),
                                  lang::fns::AddInt64(3)),
                        lang::fns::AddInt64(-6)));
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::Var("data"), lang::LitString("out"));
  lang::Program program = pb.Build();

  auto run = [&](bool fusion) {
    sim::SimFileSystem fs;
    sim::Simulator sim;
    sim::ClusterConfig config;
    config.num_machines = 2;
    sim::Cluster cluster(&sim, config);
    runtime::ExecutorOptions options;
    options.operator_fusion = fusion;
    runtime::MitosExecutor executor(&sim, &cluster, &fs, options);
    auto stats = executor.Run(program);
    MITOS_CHECK(stats.ok()) << stats.status().ToString();
    // Results identical regardless of fusion.
    MITOS_CHECK((*fs.Read("out")).size() == 3);
    return stats->bags;
  };
  int64_t fused_bags = run(true);
  int64_t plain_bags = run(false);
  // Exactly 3 interior operators per iteration disappear: 8 iterations x 3
  // bags fewer to coordinate.
  EXPECT_EQ(plain_bags - fused_bags, 3 * 8);
}

}  // namespace
}  // namespace mitos::ir
