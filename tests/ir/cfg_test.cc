#include "ir/cfg.h"

#include <gtest/gtest.h>

#include "ir/ssa.h"
#include "lang/builder.h"

namespace mitos::ir {
namespace {

// Hand-builds a CFG-only program (blocks + terminators, no statements).
Program MakeCfgProgram(
    const std::vector<Terminator>& terminators) {
  Program p;
  // One dummy bool variable for branch conditions.
  VarInfo cond;
  cond.name = "c";
  cond.def_block = 0;
  cond.def_index = 0;
  cond.singleton = true;
  p.vars.push_back(cond);
  for (const Terminator& t : terminators) {
    BasicBlock block;
    block.term = t;
    if (p.blocks.empty()) {
      Stmt s;
      s.result = 0;
      s.op = OpKind::kBagLit;
      s.bag_lit = {Datum::Bool(true)};
      block.stmts.push_back(std::move(s));
    }
    p.blocks.push_back(std::move(block));
  }
  return p;
}

Terminator Jump(BlockId t) {
  return {Terminator::Kind::kJump, t, kNoBlock, kNoVar};
}
Terminator Branch(BlockId t, BlockId f) {
  return {Terminator::Kind::kBranch, t, f, 0};
}
Terminator Exit() { return {Terminator::Kind::kExit, kNoBlock, kNoBlock,
                            kNoVar}; }

// A diamond: 0 -> (1|2) -> 3.
Program Diamond() {
  return MakeCfgProgram({Branch(1, 2), Jump(3), Jump(3), Exit()});
}

// A loop: 0 -> 1 (header), 1 -> (2 body | 3 exit), 2 -> 1.
Program Loop() {
  return MakeCfgProgram({Jump(1), Branch(2, 3), Jump(1), Exit()});
}

TEST(CfgTest, SuccessorsAndPredecessors) {
  Program p = Diamond();
  Cfg cfg(p);
  EXPECT_EQ(cfg.successors(0), (std::vector<BlockId>{1, 2}));
  EXPECT_EQ(cfg.successors(3), (std::vector<BlockId>{}));
  EXPECT_EQ(cfg.predecessors(3), (std::vector<BlockId>{1, 2}));
  EXPECT_EQ(cfg.predecessors(0), (std::vector<BlockId>{}));
}

TEST(CfgTest, Reachability) {
  Program p = Loop();
  Cfg cfg(p);
  EXPECT_TRUE(cfg.CanReach(0, 3));
  EXPECT_TRUE(cfg.CanReach(2, 3));  // around the loop
  EXPECT_TRUE(cfg.CanReach(2, 2));  // zero-length path
  EXPECT_FALSE(cfg.CanReach(3, 0));
}

TEST(CfgTest, CanReachAvoiding) {
  Program p = Loop();
  Cfg cfg(p);
  // From the body (2), reaching the exit (3) requires the header (1).
  EXPECT_FALSE(cfg.CanReachAvoiding(2, 3, 1));
  EXPECT_TRUE(cfg.CanReachAvoiding(2, 3, 0));
  // Starting at the banned block is allowed (only *passing through* later
  // is banned): from the header one can go directly to 3.
  EXPECT_TRUE(cfg.CanReachAvoiding(1, 3, 1));
}

TEST(CfgTest, CanReachAvoidingInDiamond) {
  Program p = Diamond();
  Cfg cfg(p);
  // 0 reaches 3 through either branch, so banning one side keeps it
  // reachable.
  EXPECT_TRUE(cfg.CanReachAvoiding(0, 3, 1));
  EXPECT_TRUE(cfg.CanReachAvoiding(0, 3, 2));
  // Banning the target's only predecessor from a one-sided start:
  EXPECT_FALSE(cfg.CanReachAvoiding(1, 2, 0));
}

TEST(CfgTest, DominatorsDiamond) {
  Program p = Diamond();
  Cfg cfg(p);
  EXPECT_TRUE(cfg.Dominates(0, 0));
  EXPECT_TRUE(cfg.Dominates(0, 1));
  EXPECT_TRUE(cfg.Dominates(0, 3));
  EXPECT_FALSE(cfg.Dominates(1, 3));  // 3 reachable via 2
  EXPECT_FALSE(cfg.Dominates(2, 3));
  EXPECT_EQ(cfg.idom()[3], 0);
}

TEST(CfgTest, DominatorsLoop) {
  Program p = Loop();
  Cfg cfg(p);
  EXPECT_TRUE(cfg.Dominates(1, 2));
  EXPECT_TRUE(cfg.Dominates(1, 3));
  EXPECT_FALSE(cfg.Dominates(2, 3));
  EXPECT_FALSE(cfg.Dominates(2, 1));
}

TEST(CfgTest, NestedLoopDominators) {
  // 0 -> 1(outer hdr) -> (2|5); 2(inner hdr) -> (3|4); 3 -> 2; 4 -> 1.
  Program p = MakeCfgProgram({Jump(1), Branch(2, 5), Branch(3, 4), Jump(2),
                              Jump(1), Exit()});
  Cfg cfg(p);
  EXPECT_TRUE(cfg.Dominates(1, 4));
  EXPECT_TRUE(cfg.Dominates(2, 3));
  EXPECT_FALSE(cfg.Dominates(3, 4));
  EXPECT_TRUE(cfg.Dominates(1, 5));
  // Discard-rule query: from the inner body, the outer header is reachable
  // without the inner header? No — 3 -> 2 -> ... -> 1 only through 2? 3's
  // only successor is 2. So banning 2 cuts it off.
  EXPECT_FALSE(cfg.CanReachAvoiding(3, 1, 2));
  EXPECT_TRUE(cfg.CanReachAvoiding(4, 1, 2));
}

TEST(CfgTest, SsaBuiltProgramAnalyses) {
  // End-to-end sanity on a compiler-produced CFG.
  lang::ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(3)), [&] {
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  auto ir = CompileToIr(pb.Build());
  ASSERT_TRUE(ir.ok());
  Cfg cfg(*ir);
  // Entry dominates everything.
  for (BlockId b = 0; b < ir->num_blocks(); ++b) {
    EXPECT_TRUE(cfg.Dominates(0, b)) << b;
  }
}

}  // namespace
}  // namespace mitos::ir
