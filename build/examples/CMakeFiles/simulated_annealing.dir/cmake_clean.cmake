file(REMOVE_RECURSE
  "CMakeFiles/simulated_annealing.dir/simulated_annealing.cpp.o"
  "CMakeFiles/simulated_annealing.dir/simulated_annealing.cpp.o.d"
  "simulated_annealing"
  "simulated_annealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulated_annealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
