# Empty compiler generated dependencies file for simulated_annealing.
# This may be replaced when dependencies are built.
