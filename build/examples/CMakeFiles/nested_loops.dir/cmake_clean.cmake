file(REMOVE_RECURSE
  "CMakeFiles/nested_loops.dir/nested_loops.cpp.o"
  "CMakeFiles/nested_loops.dir/nested_loops.cpp.o.d"
  "nested_loops"
  "nested_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
