# Empty compiler generated dependencies file for visit_count_diff.
# This may be replaced when dependencies are built.
