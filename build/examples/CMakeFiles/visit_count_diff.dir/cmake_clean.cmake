file(REMOVE_RECURSE
  "CMakeFiles/visit_count_diff.dir/visit_count_diff.cpp.o"
  "CMakeFiles/visit_count_diff.dir/visit_count_diff.cpp.o.d"
  "visit_count_diff"
  "visit_count_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visit_count_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
