# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mitos_tests[1]_include.cmake")
add_test(cli_visit_count "/root/repo/build/tools/mitos_run" "/root/repo/examples/scripts/visit_count.mitos" "--gen-visits=10,500,20" "--machines=3" "--show-files")
set_tests_properties(cli_visit_count PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;41;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_convergence_loop_spark "/root/repo/build/tools/mitos_run" "/root/repo/examples/scripts/word_count_loop.mitos" "--engine=spark" "--machines=2")
set_tests_properties(cli_convergence_loop_spark PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;45;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_dump_ir "/root/repo/build/tools/mitos_run" "/root/repo/examples/scripts/visit_count.mitos" "--gen-visits=10,50,5" "--dump-ir" "--dump-dot")
set_tests_properties(cli_dump_ir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;49;add_test;/root/repo/tests/CMakeLists.txt;0;")
