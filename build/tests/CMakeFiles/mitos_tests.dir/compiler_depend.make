# Empty compiler generated dependencies file for mitos_tests.
# This may be replaced when dependencies are built.
