
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/api/determinism_test.cc" "tests/CMakeFiles/mitos_tests.dir/api/determinism_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/api/determinism_test.cc.o.d"
  "/root/repo/tests/api/engine_test.cc" "tests/CMakeFiles/mitos_tests.dir/api/engine_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/api/engine_test.cc.o.d"
  "/root/repo/tests/api/random_program_test.cc" "tests/CMakeFiles/mitos_tests.dir/api/random_program_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/api/random_program_test.cc.o.d"
  "/root/repo/tests/api/workload_sweep_test.cc" "tests/CMakeFiles/mitos_tests.dir/api/workload_sweep_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/api/workload_sweep_test.cc.o.d"
  "/root/repo/tests/baselines/flink_test.cc" "tests/CMakeFiles/mitos_tests.dir/baselines/flink_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/baselines/flink_test.cc.o.d"
  "/root/repo/tests/baselines/spark_test.cc" "tests/CMakeFiles/mitos_tests.dir/baselines/spark_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/baselines/spark_test.cc.o.d"
  "/root/repo/tests/common/datum_test.cc" "tests/CMakeFiles/mitos_tests.dir/common/datum_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/common/datum_test.cc.o.d"
  "/root/repo/tests/dataflow/graph_test.cc" "tests/CMakeFiles/mitos_tests.dir/dataflow/graph_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/dataflow/graph_test.cc.o.d"
  "/root/repo/tests/dataflow/operators_test.cc" "tests/CMakeFiles/mitos_tests.dir/dataflow/operators_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/dataflow/operators_test.cc.o.d"
  "/root/repo/tests/ir/cfg_test.cc" "tests/CMakeFiles/mitos_tests.dir/ir/cfg_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/ir/cfg_test.cc.o.d"
  "/root/repo/tests/ir/dce_test.cc" "tests/CMakeFiles/mitos_tests.dir/ir/dce_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/ir/dce_test.cc.o.d"
  "/root/repo/tests/ir/fusion_test.cc" "tests/CMakeFiles/mitos_tests.dir/ir/fusion_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/ir/fusion_test.cc.o.d"
  "/root/repo/tests/ir/normalize_test.cc" "tests/CMakeFiles/mitos_tests.dir/ir/normalize_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/ir/normalize_test.cc.o.d"
  "/root/repo/tests/ir/ssa_test.cc" "tests/CMakeFiles/mitos_tests.dir/ir/ssa_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/ir/ssa_test.cc.o.d"
  "/root/repo/tests/ir/verify_test.cc" "tests/CMakeFiles/mitos_tests.dir/ir/verify_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/ir/verify_test.cc.o.d"
  "/root/repo/tests/lang/ast_test.cc" "tests/CMakeFiles/mitos_tests.dir/lang/ast_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/lang/ast_test.cc.o.d"
  "/root/repo/tests/lang/interpreter_test.cc" "tests/CMakeFiles/mitos_tests.dir/lang/interpreter_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/lang/interpreter_test.cc.o.d"
  "/root/repo/tests/lang/parser_test.cc" "tests/CMakeFiles/mitos_tests.dir/lang/parser_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/lang/parser_test.cc.o.d"
  "/root/repo/tests/lang/type_check_test.cc" "tests/CMakeFiles/mitos_tests.dir/lang/type_check_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/lang/type_check_test.cc.o.d"
  "/root/repo/tests/runtime/challenges_test.cc" "tests/CMakeFiles/mitos_tests.dir/runtime/challenges_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/runtime/challenges_test.cc.o.d"
  "/root/repo/tests/runtime/errors_test.cc" "tests/CMakeFiles/mitos_tests.dir/runtime/errors_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/runtime/errors_test.cc.o.d"
  "/root/repo/tests/runtime/executor_test.cc" "tests/CMakeFiles/mitos_tests.dir/runtime/executor_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/runtime/executor_test.cc.o.d"
  "/root/repo/tests/runtime/host_test.cc" "tests/CMakeFiles/mitos_tests.dir/runtime/host_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/runtime/host_test.cc.o.d"
  "/root/repo/tests/runtime/memory_test.cc" "tests/CMakeFiles/mitos_tests.dir/runtime/memory_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/runtime/memory_test.cc.o.d"
  "/root/repo/tests/runtime/path_test.cc" "tests/CMakeFiles/mitos_tests.dir/runtime/path_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/runtime/path_test.cc.o.d"
  "/root/repo/tests/runtime/translator_test.cc" "tests/CMakeFiles/mitos_tests.dir/runtime/translator_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/runtime/translator_test.cc.o.d"
  "/root/repo/tests/sim/cluster_test.cc" "tests/CMakeFiles/mitos_tests.dir/sim/cluster_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/sim/cluster_test.cc.o.d"
  "/root/repo/tests/sim/filesystem_test.cc" "tests/CMakeFiles/mitos_tests.dir/sim/filesystem_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/sim/filesystem_test.cc.o.d"
  "/root/repo/tests/sim/simulator_test.cc" "tests/CMakeFiles/mitos_tests.dir/sim/simulator_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/sim/simulator_test.cc.o.d"
  "/root/repo/tests/workloads/generators_test.cc" "tests/CMakeFiles/mitos_tests.dir/workloads/generators_test.cc.o" "gcc" "tests/CMakeFiles/mitos_tests.dir/workloads/generators_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mitos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
