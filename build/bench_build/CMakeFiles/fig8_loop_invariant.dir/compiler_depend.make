# Empty compiler generated dependencies file for fig8_loop_invariant.
# This may be replaced when dependencies are built.
