file(REMOVE_RECURSE
  "../bench/fig8_loop_invariant"
  "../bench/fig8_loop_invariant.pdb"
  "CMakeFiles/fig8_loop_invariant.dir/fig8_loop_invariant.cc.o"
  "CMakeFiles/fig8_loop_invariant.dir/fig8_loop_invariant.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_loop_invariant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
