file(REMOVE_RECURSE
  "../bench/fig1_imperative_vs_functional"
  "../bench/fig1_imperative_vs_functional.pdb"
  "CMakeFiles/fig1_imperative_vs_functional.dir/fig1_imperative_vs_functional.cc.o"
  "CMakeFiles/fig1_imperative_vs_functional.dir/fig1_imperative_vs_functional.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_imperative_vs_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
