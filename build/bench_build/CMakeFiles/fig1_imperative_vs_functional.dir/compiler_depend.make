# Empty compiler generated dependencies file for fig1_imperative_vs_functional.
# This may be replaced when dependencies are built.
