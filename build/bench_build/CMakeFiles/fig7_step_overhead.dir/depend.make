# Empty dependencies file for fig7_step_overhead.
# This may be replaced when dependencies are built.
