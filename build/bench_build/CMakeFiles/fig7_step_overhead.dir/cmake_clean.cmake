file(REMOVE_RECURSE
  "../bench/fig7_step_overhead"
  "../bench/fig7_step_overhead.pdb"
  "CMakeFiles/fig7_step_overhead.dir/fig7_step_overhead.cc.o"
  "CMakeFiles/fig7_step_overhead.dir/fig7_step_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_step_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
