# Empty compiler generated dependencies file for fig9_loop_pipelining.
# This may be replaced when dependencies are built.
