file(REMOVE_RECURSE
  "../bench/fig9_loop_pipelining"
  "../bench/fig9_loop_pipelining.pdb"
  "CMakeFiles/fig9_loop_pipelining.dir/fig9_loop_pipelining.cc.o"
  "CMakeFiles/fig9_loop_pipelining.dir/fig9_loop_pipelining.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_loop_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
