file(REMOVE_RECURSE
  "../bench/micro_ablations"
  "../bench/micro_ablations.pdb"
  "CMakeFiles/micro_ablations.dir/micro_ablations.cc.o"
  "CMakeFiles/micro_ablations.dir/micro_ablations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
