# Empty dependencies file for fig6_input_size.
# This may be replaced when dependencies are built.
