# Empty compiler generated dependencies file for mitos_run.
# This may be replaced when dependencies are built.
