file(REMOVE_RECURSE
  "CMakeFiles/mitos_run.dir/mitos_run.cc.o"
  "CMakeFiles/mitos_run.dir/mitos_run.cc.o.d"
  "mitos_run"
  "mitos_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitos_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
