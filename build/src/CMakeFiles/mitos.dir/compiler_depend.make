# Empty compiler generated dependencies file for mitos.
# This may be replaced when dependencies are built.
