file(REMOVE_RECURSE
  "libmitos.a"
)
