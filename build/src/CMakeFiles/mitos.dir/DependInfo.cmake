
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/engine.cc" "src/CMakeFiles/mitos.dir/api/engine.cc.o" "gcc" "src/CMakeFiles/mitos.dir/api/engine.cc.o.d"
  "/root/repo/src/baselines/flink.cc" "src/CMakeFiles/mitos.dir/baselines/flink.cc.o" "gcc" "src/CMakeFiles/mitos.dir/baselines/flink.cc.o.d"
  "/root/repo/src/baselines/spark.cc" "src/CMakeFiles/mitos.dir/baselines/spark.cc.o" "gcc" "src/CMakeFiles/mitos.dir/baselines/spark.cc.o.d"
  "/root/repo/src/common/datum.cc" "src/CMakeFiles/mitos.dir/common/datum.cc.o" "gcc" "src/CMakeFiles/mitos.dir/common/datum.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/mitos.dir/common/status.cc.o" "gcc" "src/CMakeFiles/mitos.dir/common/status.cc.o.d"
  "/root/repo/src/dataflow/graph.cc" "src/CMakeFiles/mitos.dir/dataflow/graph.cc.o" "gcc" "src/CMakeFiles/mitos.dir/dataflow/graph.cc.o.d"
  "/root/repo/src/dataflow/operators.cc" "src/CMakeFiles/mitos.dir/dataflow/operators.cc.o" "gcc" "src/CMakeFiles/mitos.dir/dataflow/operators.cc.o.d"
  "/root/repo/src/ir/cfg.cc" "src/CMakeFiles/mitos.dir/ir/cfg.cc.o" "gcc" "src/CMakeFiles/mitos.dir/ir/cfg.cc.o.d"
  "/root/repo/src/ir/dce.cc" "src/CMakeFiles/mitos.dir/ir/dce.cc.o" "gcc" "src/CMakeFiles/mitos.dir/ir/dce.cc.o.d"
  "/root/repo/src/ir/fusion.cc" "src/CMakeFiles/mitos.dir/ir/fusion.cc.o" "gcc" "src/CMakeFiles/mitos.dir/ir/fusion.cc.o.d"
  "/root/repo/src/ir/ir.cc" "src/CMakeFiles/mitos.dir/ir/ir.cc.o" "gcc" "src/CMakeFiles/mitos.dir/ir/ir.cc.o.d"
  "/root/repo/src/ir/normalize.cc" "src/CMakeFiles/mitos.dir/ir/normalize.cc.o" "gcc" "src/CMakeFiles/mitos.dir/ir/normalize.cc.o.d"
  "/root/repo/src/ir/ssa.cc" "src/CMakeFiles/mitos.dir/ir/ssa.cc.o" "gcc" "src/CMakeFiles/mitos.dir/ir/ssa.cc.o.d"
  "/root/repo/src/ir/verify.cc" "src/CMakeFiles/mitos.dir/ir/verify.cc.o" "gcc" "src/CMakeFiles/mitos.dir/ir/verify.cc.o.d"
  "/root/repo/src/lang/ast.cc" "src/CMakeFiles/mitos.dir/lang/ast.cc.o" "gcc" "src/CMakeFiles/mitos.dir/lang/ast.cc.o.d"
  "/root/repo/src/lang/functions.cc" "src/CMakeFiles/mitos.dir/lang/functions.cc.o" "gcc" "src/CMakeFiles/mitos.dir/lang/functions.cc.o.d"
  "/root/repo/src/lang/interpreter.cc" "src/CMakeFiles/mitos.dir/lang/interpreter.cc.o" "gcc" "src/CMakeFiles/mitos.dir/lang/interpreter.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/CMakeFiles/mitos.dir/lang/parser.cc.o" "gcc" "src/CMakeFiles/mitos.dir/lang/parser.cc.o.d"
  "/root/repo/src/lang/scalar_ops.cc" "src/CMakeFiles/mitos.dir/lang/scalar_ops.cc.o" "gcc" "src/CMakeFiles/mitos.dir/lang/scalar_ops.cc.o.d"
  "/root/repo/src/lang/type_check.cc" "src/CMakeFiles/mitos.dir/lang/type_check.cc.o" "gcc" "src/CMakeFiles/mitos.dir/lang/type_check.cc.o.d"
  "/root/repo/src/runtime/executor.cc" "src/CMakeFiles/mitos.dir/runtime/executor.cc.o" "gcc" "src/CMakeFiles/mitos.dir/runtime/executor.cc.o.d"
  "/root/repo/src/runtime/host.cc" "src/CMakeFiles/mitos.dir/runtime/host.cc.o" "gcc" "src/CMakeFiles/mitos.dir/runtime/host.cc.o.d"
  "/root/repo/src/runtime/path.cc" "src/CMakeFiles/mitos.dir/runtime/path.cc.o" "gcc" "src/CMakeFiles/mitos.dir/runtime/path.cc.o.d"
  "/root/repo/src/runtime/translator.cc" "src/CMakeFiles/mitos.dir/runtime/translator.cc.o" "gcc" "src/CMakeFiles/mitos.dir/runtime/translator.cc.o.d"
  "/root/repo/src/sim/cluster.cc" "src/CMakeFiles/mitos.dir/sim/cluster.cc.o" "gcc" "src/CMakeFiles/mitos.dir/sim/cluster.cc.o.d"
  "/root/repo/src/sim/filesystem.cc" "src/CMakeFiles/mitos.dir/sim/filesystem.cc.o" "gcc" "src/CMakeFiles/mitos.dir/sim/filesystem.cc.o.d"
  "/root/repo/src/workloads/generators.cc" "src/CMakeFiles/mitos.dir/workloads/generators.cc.o" "gcc" "src/CMakeFiles/mitos.dir/workloads/generators.cc.o.d"
  "/root/repo/src/workloads/programs.cc" "src/CMakeFiles/mitos.dir/workloads/programs.cc.o" "gcc" "src/CMakeFiles/mitos.dir/workloads/programs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
