// Figure 7: per-iteration-step overhead microbenchmark (log-log in the
// paper): a trivial loop with minimal per-step data.
//
// Paper result: launching a job per step (Spark, Flink separate jobs) costs
// ~2 orders of magnitude more than native iteration, and that overhead
// grows linearly with the machine count; Mitos matches the native
// iterations of Flink, TensorFlow, and Naiad (flat, milliseconds) while
// handling general control flow.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "workloads/programs.h"

namespace mitos::bench {
namespace {

// Marginal time per step in milliseconds (the one-time launch cancels).
double PerStepMs(api::EngineKind engine, int machines) {
  sim::SimFileSystem none;
  api::RunConfig config = MakeConfig(machines, /*element_scale=*/1);
  double t10 = RunOrDie(engine, workloads::StepOverheadProgram(10), none,
                        config)
                   .total_seconds;
  double t30 = RunOrDie(engine, workloads::StepOverheadProgram(30), none,
                        config)
                   .total_seconds;
  return (t30 - t10) / 20.0 * 1000.0;
}

void Main() {
  std::printf("=== Figure 7: per-step overhead (ms/step) ===\n");
  std::printf("(trivial loop, minimal per-step data)\n\n");

  SeriesTable table("machines",
                    {"Spark", "Flink sep. jobs", "Flink", "TensorFlow",
                     "Naiad", "Mitos"});
  for (int machines : {1, 3, 5, 7, 9, 13, 19, 25}) {
    table.AddRow(std::to_string(machines),
                 {PerStepMs(api::EngineKind::kSpark, machines),
                  PerStepMs(api::EngineKind::kFlinkSeparateJobs, machines),
                  PerStepMs(api::EngineKind::kFlink, machines),
                  PerStepMs(api::EngineKind::kTensorFlow, machines),
                  PerStepMs(api::EngineKind::kNaiad, machines),
                  PerStepMs(api::EngineKind::kMitos, machines)});
  }
  table.Print("ms");
  std::printf(
      "\nPaper: job-per-step systems ~2 orders of magnitude above native\n"
      "iterations and linear in machines; the native systems (Flink,\n"
      "TensorFlow, Naiad, Mitos) flat at milliseconds.\n");
}

}  // namespace
}  // namespace mitos::bench

int main(int argc, char** argv) {
  mitos::bench::ParseBenchArgs(argc, argv, "fig7");
  mitos::bench::Main();
  return 0;
}
