// Figure 1: imperative (Spark) vs functional (Flink) control flow on the
// Visit Count task, 24 machines.
//
// Paper result: Spark is ~11x slower than Flink because it launches a new
// dataflow job for every iteration step, while Flink runs native
// iterations. (Mitos is shown too for context; Figure 1 itself predates
// its introduction in the paper's narrative.)
#include <cstdio>

#include "bench_util.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::bench {
namespace {

void Main() {
  constexpr int kMachines = 24;
  constexpr double kScale = 100;      // one sim element = 100 real elements
  constexpr int kDays = 60;           // scaled-down year (ratios preserved)
  constexpr int64_t kEntriesPerDay = 26'000;  // ~21 MB/day modelled

  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = kDays,
                                         .entries_per_day = kEntriesPerDay,
                                         .num_pages = 10'000});
  lang::Program program = workloads::VisitCountProgram({.days = kDays});

  double total_bytes = 0;
  for (const auto& name : inputs.ListFiles()) {
    total_bytes += static_cast<double>(inputs.FileBytes(name)) * kScale;
  }
  std::printf("=== Figure 1: imperative vs functional control flow ===\n");
  std::printf("Visit Count, %d machines, %d days, modelled input %s\n\n",
              kMachines, kDays, HumanBytes(total_bytes).c_str());

  api::RunConfig config = MakeConfig(kMachines, kScale);
  double spark =
      RunOrDie(api::EngineKind::kSpark, program, inputs, config)
          .total_seconds;
  double flink =
      RunOrDie(api::EngineKind::kFlink, program, inputs, config)
          .total_seconds;
  double mitos =
      RunOrDie(api::EngineKind::kMitos, program, inputs, config)
          .total_seconds;

  SeriesTable table("system", {"execution time"});
  table.AddRow("Spark", {spark});
  table.AddRow("Flink", {flink});
  table.AddRow("Mitos", {mitos});
  table.Print();

  std::printf("\nSpark / Flink factor: %.1fx   (paper: ~11x)\n",
              spark / flink);
  std::printf("Spark / Mitos factor: %.1fx\n", spark / mitos);
}

}  // namespace
}  // namespace mitos::bench

int main(int argc, char** argv) {
  mitos::bench::ParseBenchArgs(argc, argv, "fig1");
  mitos::bench::Main();
  return 0;
}
