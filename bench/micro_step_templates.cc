// Ablation of the step-template cache (DESIGN.md "Step templates"): the
// control plane re-derives per-step bag ids, longest-prefix input choices,
// conditional gating and routing on every iteration; after a few
// structurally identical steps the validated template replay skips the
// re-derivation and shrinks the decision broadcast.
//
//   * steady loop (fig7's program): per-step overhead with templates on vs
//     off, plus the hit/miss/invalidation counters;
//   * hostile control flow (an if-inside-loop whose branch flips every
//     iteration): no step is ever replayable, so templates-on must match
//     templates-off to the last virtual nanosecond.
#include <cstdio>

#include "bench_util.h"
#include "lang/builder.h"
#include "runtime/executor.h"
#include "sim/simulator.h"
#include "workloads/programs.h"

namespace mitos::bench {
namespace {

runtime::RunStats RunWith(const lang::Program& program,
                          const sim::ClusterConfig& cluster_config,
                          const runtime::ExecutorOptions& options) {
  sim::SimFileSystem fs;
  sim::Simulator sim;
  sim::Cluster cluster(&sim, cluster_config);
  runtime::MitosExecutor executor(&sim, &cluster, &fs, options);
  auto stats = executor.Run(program);
  MITOS_CHECK(stats.ok()) << stats.status().ToString();
  return *stats;
}

void SteadyLoopAblation() {
  std::printf("--- ablation: steady loop (fig7 program) per-step cost ---\n");
  std::printf("%9s %14s %14s %9s %7s %7s %7s\n", "machines", "off ms/step",
              "on ms/step", "saved", "hits", "miss", "inval");
  for (int machines : {1, 5, 13, 25}) {
    sim::ClusterConfig cluster;
    cluster.num_machines = machines;
    runtime::ExecutorOptions off;
    runtime::ExecutorOptions on;
    on.step_templates = true;
    runtime::RunStats on_stats;
    double per_step[2];
    for (int mode = 0; mode < 2; ++mode) {
      const runtime::ExecutorOptions& options = mode == 0 ? off : on;
      double t10 =
          RunWith(workloads::StepOverheadProgram(10), cluster, options)
              .total_seconds;
      runtime::RunStats s30 =
          RunWith(workloads::StepOverheadProgram(30), cluster, options);
      per_step[mode] = (s30.total_seconds - t10) / 20.0 * 1000.0;
      if (mode == 1) on_stats = s30;
    }
    MITOS_CHECK(per_step[1] <= per_step[0])
        << "templates-on slower than off";
    MITOS_CHECK(on_stats.template_hits > 0)
        << "steady loop produced no template hits";
    std::printf("%9d %12.4f %12.4f %8.2f%% %7lld %7lld %7lld\n", machines,
                per_step[0], per_step[1],
                100.0 * (1.0 - per_step[1] / per_step[0]),
                static_cast<long long>(on_stats.template_hits),
                static_cast<long long>(on_stats.template_misses),
                static_cast<long long>(on_stats.template_invalidations));
  }
  std::printf("(the saved work is the per-step open/finish bookkeeping and\n"
              "the shrunken decision broadcast; both only apply on hits)\n\n");
}

lang::Program FlippingIfProgram(int steps) {
  lang::ProgramBuilder pb;
  pb.Assign("state", lang::BagLit({Datum::Int64(0)}));
  pb.While(
      lang::Lt(lang::ScalarFromBag(lang::Var("state")), lang::LitInt(steps)),
      [&] {
        pb.If(lang::Eq(lang::Mod(lang::ScalarFromBag(lang::Var("state")),
                                 lang::LitInt(2)),
                       lang::LitInt(0)),
              [&] {
                pb.Assign("state", lang::Map(lang::Var("state"),
                                             lang::fns::AddInt64(1)));
              },
              [&] {
                pb.Assign("state", lang::Map(lang::Var("state"),
                                             lang::fns::AddInt64(1)));
              });
      });
  pb.WriteFile(lang::Var("state"), lang::LitString("out"));
  return pb.Build();
}

void HostileControlFlowParity() {
  std::printf("--- hostile control flow: branch flips every iteration ---\n");
  lang::Program program = FlippingIfProgram(40);
  sim::ClusterConfig cluster;
  cluster.num_machines = 8;
  runtime::ExecutorOptions off;
  runtime::ExecutorOptions on;
  on.step_templates = true;
  runtime::RunStats a = RunWith(program, cluster, off);
  runtime::RunStats b = RunWith(program, cluster, on);
  MITOS_CHECK(a.total_seconds == b.total_seconds)
      << "hostile program diverged: off=" << a.total_seconds
      << " on=" << b.total_seconds;
  MITOS_CHECK_EQ(b.template_hits, 0);
  std::printf("off: %10.6fs\n", a.total_seconds);
  std::printf("on:  %10.6fs  hits=%lld inval=%lld (bit-identical time)\n",
              b.total_seconds, static_cast<long long>(b.template_hits),
              static_cast<long long>(b.template_invalidations));
  std::printf("(every divergence resets the steady-step counters, so no\n"
              "template ever reaches replayable state — the cache costs\n"
              "nothing when control flow never repeats)\n");
}

}  // namespace
}  // namespace mitos::bench

int main(int argc, char** argv) {
  mitos::bench::ParseBenchArgs(argc, argv, "micro_step_templates");
  mitos::bench::SteadyLoopAblation();
  mitos::bench::HostileControlFlowParity();
  return 0;
}
