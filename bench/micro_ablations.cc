// Ablations of Mitos design choices beyond the paper's figures (DESIGN.md
// calls these out):
//   * dead code elimination of unused loop Φs (compiler pass);
//   * the Sec. 5.2.4 discard rule (bounded memory over long loops);
//   * pipeline chunk granularity (latency/overhead trade-off).
#include <cstdio>

#include "bench_util.h"
#include "lang/builder.h"
#include "runtime/executor.h"
#include "sim/simulator.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::bench {
namespace {

runtime::RunStats RunWith(const lang::Program& program,
                          const sim::SimFileSystem& inputs,
                          const sim::ClusterConfig& cluster_config,
                          const runtime::ExecutorOptions& options) {
  sim::SimFileSystem fs = inputs;
  sim::Simulator sim;
  sim::Cluster cluster(&sim, cluster_config);
  runtime::MitosExecutor executor(&sim, &cluster, &fs, options);
  auto stats = executor.Run(program);
  MITOS_CHECK(stats.ok()) << stats.status().ToString();
  return *stats;
}

void DeadCodeAblation() {
  std::printf("--- ablation: dead code elimination ---\n");
  // A loop carrying a bag nobody reads, next to the observed one.
  lang::ProgramBuilder pb;
  pb.Assign("noise", lang::BagLit({Datum::Int64(0)}));
  pb.Assign("state", lang::BagLit({Datum::Int64(0)}));
  pb.While(lang::Lt(lang::ScalarFromBag(lang::Var("state")),
                    lang::LitInt(100)),
           [&] {
             pb.Assign("noise", lang::Map(lang::Var("noise"),
                                          lang::fns::AddInt64(1)));
             pb.Assign("state", lang::Map(lang::Var("state"),
                                          lang::fns::AddInt64(1)));
           });
  pb.WriteFile(lang::Var("state"), lang::LitString("out"));
  lang::Program program = pb.Build();

  sim::ClusterConfig cluster;
  cluster.num_machines = 8;
  runtime::ExecutorOptions with_dce;
  runtime::ExecutorOptions without_dce;
  without_dce.dead_code_elimination = false;
  auto a = RunWith(program, {}, cluster, with_dce);
  auto b = RunWith(program, {}, cluster, without_dce);
  std::printf("with DCE:    %8.4fs  bags=%lld\n", a.total_seconds,
              static_cast<long long>(a.bags));
  std::printf("without DCE: %8.4fs  bags=%lld\n", b.total_seconds,
              static_cast<long long>(b.bags));
  std::printf("dead loop state costs %.1f%% more coordinated bags\n\n",
              100.0 * (static_cast<double>(b.bags) / a.bags - 1.0));
}

void DiscardRuleAblation() {
  std::printf("--- ablation: Sec. 5.2.4 discard rule (peak memory) ---\n");
  sim::ClusterConfig cluster;
  cluster.num_machines = 4;
  std::printf("%8s %22s %22s\n", "days", "discard ON", "discard OFF");
  for (int days : {10, 40, 160}) {
    sim::SimFileSystem inputs;
    workloads::GenerateVisitLogs(&inputs, {.days = days,
                                           .entries_per_day = 2'000,
                                           .num_pages = 200});
    lang::Program program = workloads::VisitCountProgram({.days = days});
    runtime::ExecutorOptions on;
    runtime::ExecutorOptions off;
    off.discard_spent_bags = false;
    auto a = RunWith(program, inputs, cluster, on);
    auto b = RunWith(program, inputs, cluster, off);
    std::printf("%8d %20s %20s\n", days,
                HumanBytes(static_cast<double>(a.peak_buffered_bytes))
                    .c_str(),
                HumanBytes(static_cast<double>(b.peak_buffered_bytes))
                    .c_str());
  }
  std::printf("(bounded vs growing linearly with the iteration count)\n\n");
}

void FusionAblation() {
  std::printf("--- ablation: elementwise operator fusion ---\n");
  // A loop whose body is a 6-op elementwise chain over a larger bag.
  lang::ProgramBuilder pb;
  DatumVector data;
  for (int i = 0; i < 20'000; ++i) data.push_back(Datum::Int64(i));
  pb.Assign("data", lang::BagLit(std::move(data)));
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(30)), [&] {
    lang::ExprPtr chain = lang::Var("data");
    for (int s = 0; s < 6; ++s) {
      chain = lang::Map(chain, lang::fns::AddInt64(s % 2 == 0 ? 1 : -1));
    }
    pb.Assign("data", chain);
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::Var("data"), lang::LitString("out"));
  lang::Program program = pb.Build();

  sim::ClusterConfig cluster;
  cluster.num_machines = 8;
  runtime::ExecutorOptions plain;
  runtime::ExecutorOptions fused;
  fused.operator_fusion = true;
  auto a = RunWith(program, {}, cluster, plain);
  auto b = RunWith(program, {}, cluster, fused);
  std::printf("unfused: %8.3fs  bags=%lld  msgs=%lld\n", a.total_seconds,
              static_cast<long long>(a.bags),
              static_cast<long long>(a.cluster.messages));
  std::printf("fused:   %8.3fs  bags=%lld  msgs=%lld\n", b.total_seconds,
              static_cast<long long>(b.bags),
              static_cast<long long>(b.cluster.messages));
  std::printf("fusion time ratio (unfused/fused): %.2fx\n", 
              a.total_seconds / b.total_seconds);
  std::printf("(fusion removes coordination and messages but serializes the\n"
              "chain onto one operator instance, giving up the pipeline\n"
              "parallelism between chained operators — a real trade-off)\n\n");
}

void ChunkSizeAblation() {
  std::printf("--- ablation: pipeline chunk granularity ---\n");
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = 20,
                                         .entries_per_day = 20'000,
                                         .num_pages = 2'000});
  lang::Program program = workloads::VisitCountProgram({.days = 20});
  std::printf("%14s %12s %14s\n", "chunk elems", "time", "messages");
  for (size_t chunk : {128u, 512u, 2048u, 8192u, 65536u}) {
    sim::ClusterConfig cluster;
    cluster.num_machines = 8;
    cluster.chunk_elements = chunk;
    auto stats = RunWith(program, inputs, cluster, {});
    std::printf("%14zu %10.3fs %14lld\n", chunk, stats.total_seconds,
                static_cast<long long>(stats.cluster.messages));
  }
  std::printf("(small chunks pay per-message overhead; huge chunks lose\n"
              "pipelining granularity)\n");
}

}  // namespace
}  // namespace mitos::bench

int main(int argc, char** argv) {
  mitos::bench::ParseBenchArgs(argc, argv, "micro_ablations");
  mitos::bench::DeadCodeAblation();
  mitos::bench::DiscardRuleAblation();
  mitos::bench::FusionAblation();
  mitos::bench::ChunkSizeAblation();
  return 0;
}
