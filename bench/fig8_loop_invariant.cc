// Figure 8: varying the size of the loop-invariant (pageTypes) dataset
// while keeping the variable part of the input constant.
//
// Paper result: Mitos and Flink are nearly flat (they hoist: the join hash
// table is built once before the loop and only probed in later steps);
// Spark grows linearly with the invariant size (rebuilds the hash table in
// every per-step job) and ends up 45x slower; Mitos without hoisting also
// grows linearly and is up to 11x slower than Mitos.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::bench {
namespace {

void Main() {
  constexpr int kMachines = 25;
  constexpr int kDays = 20;
  constexpr double kScale = 4000;
  // Variable part: the paper's 13 GB over 365 days = ~36 MB/day; keeping
  // the per-day size (not the day count) preserves the per-step ratios.
  constexpr int64_t kSimEntriesPerDay = 1125;
  // Each pageTypes row models 200 bytes (page id, type, payload).
  constexpr double kRowBytes = 200.0;

  std::printf("=== Figure 8: loop-invariant dataset size sweep ===\n");
  std::printf("(%d machines, %d days, variable part ~13 GB modelled)\n\n",
              kMachines, kDays);

  SeriesTable table("invariant size",
                    {"Spark", "Mitos wo. hoist", "Flink", "Mitos",
                     "Spark/Mitos", "woHoist/Mitos"});
  for (double gb : {0.6, 1.0, 2.0, 3.0, 4.0}) {
    int64_t sim_pages =
        static_cast<int64_t>(gb * 1e9 / kRowBytes / kScale);

    sim::SimFileSystem inputs;
    workloads::GenerateVisitLogs(&inputs,
                                 {.days = kDays,
                                  .entries_per_day = kSimEntriesPerDay,
                                  .num_pages = sim_pages});
    workloads::GeneratePageTypes(&inputs, {.num_pages = sim_pages,
                                           .num_types = 4,
                                           .padding_bytes = 180});
    lang::Program program = workloads::VisitCountProgram(
        {.days = kDays, .with_page_types = true});

    api::RunConfig config = MakeConfig(kMachines, kScale);
    double spark = RunOrDie(api::EngineKind::kSpark, program, inputs, config)
                       .total_seconds;
    double wo_hoist = RunOrDie(api::EngineKind::kMitosNoHoisting, program,
                               inputs, config)
                          .total_seconds;
    double flink = RunOrDie(api::EngineKind::kFlink, program, inputs, config)
                       .total_seconds;
    double mitos = RunOrDie(api::EngineKind::kMitos, program, inputs, config)
                       .total_seconds;
    table.AddRow(HumanBytes(gb * 1e9), {spark, wo_hoist, flink, mitos,
                                        spark / mitos, wo_hoist / mitos});
  }
  table.Print();
  std::printf(
      "\nPaper: Mitos & Flink flat; Spark linear, up to 45x slower than\n"
      "Mitos; Mitos without hoisting linear, up to 11x slower than Mitos.\n");
}

}  // namespace
}  // namespace mitos::bench

int main(int argc, char** argv) {
  mitos::bench::ParseBenchArgs(argc, argv, "fig8");
  mitos::bench::Main();
  return 0;
}
