// First real-CPU numbers for the step-template cache: the ThreadsBackend
// (thread-per-machine, wall-clock time — runtime/threads_backend.h) runs
// the fig7-style step-overhead loop with templates on vs off.
//
// On the DES the template win is a modelled latency saving: a validated
// replay skips control-plane round-trips, which cost real network RTTs on
// a cluster. On a single multicore host those round-trips collapse to
// ~microsecond cross-thread channel hops, so the honest wall-clock claim
// this bench makes is PARITY: the template machinery (cache lookups,
// validation, invalidation bookkeeping on live mutexes) must not make runs
// SLOWER under real thread contention. The hit counters in the table prove
// the cache is actually engaging, not silently bypassed.
//
// Method: per configuration, `reps` timed runs; the MINIMUM wall time is
// reported (the standard estimator for "how fast can this go" under
// scheduler noise). Element-for-element equivalence of the two modes and
// the two backends is covered separately by the differential suite in
// tests/runtime/backend_diff_test.cc.
//
// Flags:
//   --out=FILE   write the table as JSON (the committed
//                bench/baselines/BENCH_threads_wallclock.json artifact;
//                wall-clock quantities are host-specific, so bench_diff
//                never gates on this file)
//   --check      hard-fail unless templates-on is no worse than off
//                (within 10%) on every row; used when refreshing the
//                committed artifact, off in CI where machine noise rules
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "runtime/executor.h"
#include "common/logging.h"
#include "workloads/programs.h"

namespace mitos::bench {
namespace {

double TimedRun(api::BackendKind backend, const lang::Program& program,
                int machines, bool templates,
                runtime::RunStats* stats_out = nullptr) {
  sim::SimFileSystem fs;
  api::RunConfig config{.machines = machines};
  config.backend = backend;
  config.step_templates = templates;
  const auto t0 = std::chrono::steady_clock::now();
  auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
  const auto t1 = std::chrono::steady_clock::now();
  MITOS_CHECK(result.ok()) << result.status().ToString();
  if (stats_out != nullptr) *stats_out = result->stats;
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Row {
  int machines;
  int steps;
  double off_seconds;  // min over reps, templates off
  double on_seconds;   // min over reps, templates on
  int64_t hits = 0;    // template hits in the templates-on runs
  int64_t misses = 0;
};

}  // namespace
}  // namespace mitos::bench

int main(int argc, char** argv) {
  using namespace mitos;
  using bench::Row;

  std::string out_path;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg == "--check") {
      check = true;
    } else {
      std::fprintf(stderr, "ignoring unknown flag: %s\n", arg.c_str());
    }
  }

  constexpr int kReps = 5;
  std::vector<Row> rows;
  std::printf("--- threads backend (wall clock): fig7 step loop, "
              "templates on vs off, min of %d reps ---\n",
              kReps);
  std::printf("%9s %6s %12s %12s %8s %8s %8s\n", "machines", "steps",
              "off (ms)", "on (ms)", "delta", "hits", "misses");
  for (int machines : {4, 8}) {
    for (int steps : {400, 1600}) {
      lang::Program program = workloads::StepOverheadProgram(steps);
      Row row{machines, steps, 1e300, 1e300};
      // Alternate modes within each rep so drift (thermal, other load)
      // hits both sides evenly.
      for (int rep = 0; rep < kReps; ++rep) {
        row.off_seconds = std::min(
            row.off_seconds, bench::TimedRun(api::BackendKind::kThreads,
                                             program, machines, false));
        runtime::RunStats stats;
        row.on_seconds = std::min(
            row.on_seconds, bench::TimedRun(api::BackendKind::kThreads,
                                            program, machines, true,
                                            &stats));
        row.hits = stats.template_hits;
        row.misses = stats.template_misses;
      }
      MITOS_CHECK(row.hits > 0) << "templates-on run recorded no hits";
      std::printf("%9d %6d %12.2f %12.2f %+7.1f%% %8lld %8lld\n", machines,
                  steps, row.off_seconds * 1e3, row.on_seconds * 1e3,
                  100.0 * (row.on_seconds / row.off_seconds - 1.0),
                  static_cast<long long>(row.hits),
                  static_cast<long long>(row.misses));
      rows.push_back(row);
    }
  }
  std::printf("(delta = on/off - 1; on one multicore host the modelled "
              "control-plane\n round-trips are ~us channel hops, so the "
              "expectation is parity: the\n template cache must engage — "
              "hits > 0 — without costing wall time)\n");

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    MITOS_CHECK(static_cast<bool>(out)) << "cannot write " << out_path;
    out << "{\"schema\":1,\"figure\":\"threads_wallclock\",\n"
        << " \"note\":\"wall-clock seconds, host-specific; min of "
        << kReps << " reps; never gated by bench_diff\",\n"
        << " \"entries\":[\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      char line[256];
      std::snprintf(line, sizeof line,
                    "{\"key\":\"fig7/m%d/s%d\",\"machines\":%d,"
                    "\"steps\":%d,\"off_seconds\":%.6f,"
                    "\"on_seconds\":%.6f,\"template_hits\":%lld,"
                    "\"template_misses\":%lld}",
                    r.machines, r.steps, r.machines, r.steps, r.off_seconds,
                    r.on_seconds, static_cast<long long>(r.hits),
                    static_cast<long long>(r.misses));
      out << line << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "]}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (check) {
    for (const Row& r : rows) {
      MITOS_CHECK(r.on_seconds <= r.off_seconds * 1.10)
          << "templates-on slower than off under threads: m=" << r.machines
          << " steps=" << r.steps << " off=" << r.off_seconds
          << "s on=" << r.on_seconds << "s";
    }
    std::printf("check passed: templates-on no worse than off (10%% "
                "tolerance) on every row\n");
  }
  return 0;
}
