// Microbenchmarks for the Mitos library internals (google-benchmark).
//
// These are not paper figures; they track the host-side costs of the
// building blocks: Datum hashing, the shared reduce kernel, compilation
// (Preparator + SSA + translation), the longest-prefix input-choice rule,
// and a small end-to-end simulated run.
#include <benchmark/benchmark.h>

#include "ir/ssa.h"
#include "lang/interpreter.h"
#include "runtime/executor.h"
#include "runtime/path.h"
#include "runtime/translator.h"
#include "sim/cluster.h"
#include "sim/simulator.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos {
namespace {

void BM_DatumHashInt(benchmark::State& state) {
  Datum d = Datum::Int64(123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.Hash());
  }
}
BENCHMARK(BM_DatumHashInt);

void BM_DatumHashTuple(benchmark::State& state) {
  Datum d = Datum::Tuple({Datum::Int64(7), Datum::String("page"),
                          Datum::Double(0.5)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.Hash());
  }
}
BENCHMARK(BM_DatumHashTuple);

void BM_ReduceByKeyKernel(benchmark::State& state) {
  DatumVector input;
  for (int i = 0; i < 4096; ++i) {
    input.push_back(Datum::Pair(Datum::Int64(i % 97), Datum::Int64(1)));
  }
  lang::BinaryFn combine = lang::fns::SumInt64();
  for (auto _ : state) {
    auto result = lang::ReduceByKeyKernel(input, combine);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ReduceByKeyKernel);

void BM_CompileVisitCount(benchmark::State& state) {
  lang::Program program = workloads::VisitCountProgram({.days = 365});
  for (auto _ : state) {
    auto ir = ir::CompileToIr(program);
    benchmark::DoNotOptimize(ir);
  }
}
BENCHMARK(BM_CompileVisitCount);

void BM_TranslateVisitCount(benchmark::State& state) {
  lang::Program program = workloads::VisitCountProgram({.days = 365});
  auto ir = ir::CompileToIr(program);
  MITOS_CHECK(ir.ok());
  for (auto _ : state) {
    auto graph = runtime::Translate(*ir, 25);
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_TranslateVisitCount);

void BM_LongestPrefix(benchmark::State& state) {
  runtime::ExecutionPath path;
  // A long alternating path (block 2 occurs every 3 appends).
  for (int i = 0; i < state.range(0); ++i) {
    path.Append(1);
    path.Append(2);
    path.Append(3);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(path.LongestPrefixEndingWith(2, path.size()));
  }
}
BENCHMARK(BM_LongestPrefix)->Arg(100)->Arg(10000);

void BM_InterpreterVisitCount(benchmark::State& state) {
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = 10,
                                         .entries_per_day = 1000,
                                         .num_pages = 100});
  lang::Program program = workloads::VisitCountProgram({.days = 10});
  for (auto _ : state) {
    sim::SimFileSystem fs = inputs;
    lang::Interpreter interp(&fs);
    Status status = interp.Run(program);
    MITOS_CHECK(status.ok());
  }
}
BENCHMARK(BM_InterpreterVisitCount);

void BM_MitosEndToEndTinyLoop(benchmark::State& state) {
  lang::Program program = workloads::StepOverheadProgram(10);
  for (auto _ : state) {
    sim::SimFileSystem fs;
    sim::Simulator sim;
    sim::ClusterConfig config;
    config.num_machines = 4;
    sim::Cluster cluster(&sim, config);
    runtime::MitosExecutor executor(&sim, &cluster, &fs);
    auto stats = executor.Run(program);
    MITOS_CHECK(stats.ok());
  }
}
BENCHMARK(BM_MitosEndToEndTinyLoop);

}  // namespace
}  // namespace mitos

BENCHMARK_MAIN();
