// Shared harness utilities for the per-figure benchmark binaries.
//
// Scaling: the simulator processes real elements, so paper-sized inputs
// (gigabytes) are represented by `element_scale`: each simulated element
// stands for `element_scale` real elements. Per-element CPU cost is scaled
// up and bandwidths scaled down by the same factor, so virtual time behaves
// as if the full-size data were processed while the harness stays fast.
// Reported dataset sizes are the modelled (scaled) sizes.
#ifndef MITOS_BENCH_BENCH_UTIL_H_
#define MITOS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/logging.h"
#include "obs/analysis/analysis.h"
#include "obs/analysis/baseline.h"
#include "obs/live/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/filesystem.h"

namespace mitos::bench {

// Per-process harness state set by ParseBenchArgs.
struct BenchContext {
  std::string figure;        // e.g. "fig9"; names baseline entries
  std::string metrics_out;   // --metrics-out=FILE (JSON Lines), "" = off
  std::string baseline_out;  // --baseline-out=FILE (BENCH_*.json), "" = off
  std::string event_log_out;  // --event-log=FILE (JSONL), "" = off
  obs::analysis::BaselineFile baseline;
  int run_index = 0;
  // --step-templates=on|off override; -1 = keep each benchmark's default.
  int step_templates_override = -1;
};

inline BenchContext& Context() {
  static BenchContext context;
  return context;
}

// Destination for per-run metrics dumps; empty means disabled.
inline std::string& MetricsOutPath() { return Context().metrics_out; }

// Benchmarks accept two optional flags:
//   --metrics-out=FILE   append one JSON line {"run","engine","metrics"}
//                        per RunOrDie invocation (JSON Lines)
//   --baseline-out=FILE  write a bench-regression baseline (the committed
//                        BENCH_<figure>.json files): per run, the
//                        virtual-time total plus the critical-path
//                        decomposition from the post-run analyzer. Compare
//                        two baselines with tools/bench_diff.
//   --step-templates=on|off  force the Mitos step-template cache on or off
//                        for every run (default: the engine default, on);
//                        CI's perf-smoke job uses this to produce the
//                        on-vs-off baselines bench_diff --no-worse gates.
//   --event-log=FILE     append every run's live event stream (obs/live/,
//                        JSONL; steps, decisions, template activity,
//                        snapshots) to FILE. Observational only — the
//                        watchdog stays off and virtual time is untouched,
//                        so baselines match unlogged runs byte for byte.
//                        CI's perf-smoke job uploads the result as an
//                        artifact.
// `figure` is the benchmark's stable name ("fig9"); it keys baseline
// entries so bench_diff can match runs across builds.
inline void ParseBenchArgs(int argc, char** argv, const char* figure) {
  BenchContext& context = Context();
  context.figure = figure;
  context.baseline.figure = figure;
  constexpr const char kMetricsPrefix[] = "--metrics-out=";
  constexpr const char kBaselinePrefix[] = "--baseline-out=";
  constexpr const char kEventLogPrefix[] = "--event-log=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(kMetricsPrefix, 0) == 0) {
      context.metrics_out = arg.substr(sizeof(kMetricsPrefix) - 1);
      std::ofstream(context.metrics_out, std::ios::trunc);  // start fresh
    } else if (arg.rfind(kBaselinePrefix, 0) == 0) {
      context.baseline_out = arg.substr(sizeof(kBaselinePrefix) - 1);
    } else if (arg.rfind(kEventLogPrefix, 0) == 0) {
      context.event_log_out = arg.substr(sizeof(kEventLogPrefix) - 1);
      std::ofstream(context.event_log_out, std::ios::trunc);  // start fresh
    } else if (arg == "--step-templates=on") {
      context.step_templates_override = 1;
    } else if (arg == "--step-templates=off") {
      context.step_templates_override = 0;
    } else {
      std::fprintf(stderr, "ignoring unknown flag: %s\n", arg.c_str());
    }
  }
}

// Cluster configured like the paper's testbed, with element scaling.
inline api::RunConfig MakeConfig(int machines, double element_scale) {
  api::RunConfig config;
  config.machines = machines;
  config.cluster.cpu_per_element *= element_scale;
  // Chunk payload cost scales with the modelled element size (each
  // simulated byte stands for element_scale real bytes); the per-chunk
  // dispatch charge is bookkeeping and does not.
  config.cluster.cpu_per_byte *= element_scale;
  config.cluster.net_bandwidth /= element_scale;
  config.cluster.disk_bandwidth /= element_scale;
  config.cluster.memory_bandwidth /= element_scale;
  config.cluster.local_bandwidth /= element_scale;
  // Headers/control messages do not grow with the modelled element size.
  config.cluster.control_message_bytes = static_cast<size_t>(
      std::max(8.0, 64.0 / element_scale));
  config.cluster.template_control_message_bytes = static_cast<size_t>(
      std::max(4.0, 16.0 / element_scale));
  // Chunks keep their modelled byte granularity.
  config.cluster.chunk_elements = static_cast<size_t>(
      std::max(64.0, 2048.0 / element_scale));
  return config;
}

// Runs `program` on a private copy of `inputs`; aborts the benchmark on
// engine errors (misconfiguration should be loud).
inline runtime::RunStats RunOrDie(api::EngineKind engine,
                                  const lang::Program& program,
                                  const sim::SimFileSystem& inputs,
                                  const api::RunConfig& config) {
  BenchContext& context = Context();
  sim::SimFileSystem fs = inputs;
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  api::RunConfig run_config = config;
  if (context.step_templates_override >= 0) {
    run_config.step_templates = context.step_templates_override == 1;
  }
  const bool want_baseline = !context.baseline_out.empty();
  if (!context.metrics_out.empty() || want_baseline) {
    run_config.metrics = &metrics;
  }
  // Purely observational (regression-tested): attaching the recorder never
  // changes virtual time, so baselines match unobserved runs byte for byte.
  if (want_baseline) run_config.trace = &trace;
  // Ditto for the live event log: snapshots and step records ride on
  // observational hooks, and the watchdog stays off, so a logged run's
  // baseline is byte-identical to an unlogged one.
  obs::live::EventLog::Options log_options;
  if (!context.event_log_out.empty()) {
    log_options.sink = [&context](const std::string& text) {
      std::ofstream(context.event_log_out, std::ios::app) << text;
    };
    // Same wall clock the CLI wires: unix milliseconds, stamped under the
    // log's lock so wall_ms is monotone in record order even when machine
    // threads append concurrently (threads backend).
    log_options.wall_clock_ms = [] {
      return static_cast<int64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
    };
  }
  obs::live::EventLog event_log(std::move(log_options));
  if (!context.event_log_out.empty()) {
    run_config.live.event_log = &event_log;
    run_config.metrics = &metrics;
    run_config.live.snapshots.enabled = true;
  }
  auto result = api::Run(engine, program, &fs, run_config);
  MITOS_CHECK(result.ok()) << api::EngineKindName(engine) << ": "
                           << result.status().ToString();
  const int run_index = context.run_index++;
  if (!context.metrics_out.empty()) {
    std::string json = metrics.ToJson();
    while (!json.empty() && (json.back() == '\n' || json.back() == ' ')) {
      json.pop_back();
    }
    std::ofstream out(context.metrics_out, std::ios::app);
    out << "{\"run\": " << run_index << ", \"engine\": \""
        << api::EngineKindName(engine) << "\", \"metrics\": " << json
        << "}\n";
  }
  if (want_baseline) {
    obs::analysis::RunAnalysis analysis =
        obs::analysis::Analyze(trace, &metrics);
    obs::analysis::BaselineEntry entry;
    entry.engine = api::EngineKindName(engine);
    entry.machines = config.machines;
    entry.key = context.figure + "/" + std::to_string(run_index) + "/" +
                entry.engine + "/" + std::to_string(config.machines) + "m";
    entry.total_seconds = result->stats.total_seconds;
    entry.decomposition = analysis.decomposition;
    context.baseline.entries.push_back(std::move(entry));
    // Rewritten after every run so a partial bench still leaves a valid
    // (prefix) baseline on disk.
    std::ofstream(context.baseline_out, std::ios::trunc)
        << context.baseline.ToJson();
  }
  return result->stats;
}

// Markdown-ish series table: one row per x value, one column per engine.
class SeriesTable {
 public:
  SeriesTable(std::string x_label, std::vector<std::string> columns)
      : x_label_(std::move(x_label)), columns_(std::move(columns)) {}

  void AddRow(const std::string& x, const std::vector<double>& values) {
    MITOS_CHECK_EQ(values.size(), columns_.size());
    rows_.push_back({x, values});
  }

  void Print(const char* unit = "s") const {
    std::printf("| %-18s |", x_label_.c_str());
    for (const std::string& c : columns_) std::printf(" %16s |", c.c_str());
    std::printf("\n|%s|", std::string(20, '-').c_str());
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s|", std::string(18, '-').c_str());
    }
    std::printf("\n");
    for (const Row& row : rows_) {
      std::printf("| %-18s |", row.x.c_str());
      for (double v : row.values) std::printf(" %14.3f%s |", v, unit);
      std::printf("\n");
    }
  }

 private:
  struct Row {
    std::string x;
    std::vector<double> values;
  };
  std::string x_label_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

inline std::string HumanBytes(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f KB", bytes / 1e3);
  }
  return buf;
}

}  // namespace mitos::bench

#endif  // MITOS_BENCH_BENCH_UTIL_H_
