// Shared harness utilities for the per-figure benchmark binaries.
//
// Scaling: the simulator processes real elements, so paper-sized inputs
// (gigabytes) are represented by `element_scale`: each simulated element
// stands for `element_scale` real elements. Per-element CPU cost is scaled
// up and bandwidths scaled down by the same factor, so virtual time behaves
// as if the full-size data were processed while the harness stays fast.
// Reported dataset sizes are the modelled (scaled) sizes.
#ifndef MITOS_BENCH_BENCH_UTIL_H_
#define MITOS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "sim/filesystem.h"

namespace mitos::bench {

// Destination for per-run metrics dumps; empty means disabled.
inline std::string& MetricsOutPath() {
  static std::string path;
  return path;
}

// Benchmarks accept one optional flag: --metrics-out=FILE. When set, every
// RunOrDie invocation appends one JSON line {"run", "engine", "metrics"} to
// FILE (JSON Lines — one object per benchmark run).
inline void ParseBenchArgs(int argc, char** argv) {
  constexpr const char kPrefix[] = "--metrics-out=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(kPrefix, 0) == 0) {
      MetricsOutPath() = arg.substr(sizeof(kPrefix) - 1);
      std::ofstream(MetricsOutPath(), std::ios::trunc);  // start fresh
    } else {
      std::fprintf(stderr, "ignoring unknown flag: %s\n", arg.c_str());
    }
  }
}

// Cluster configured like the paper's testbed, with element scaling.
inline api::RunConfig MakeConfig(int machines, double element_scale) {
  api::RunConfig config;
  config.machines = machines;
  config.cluster.cpu_per_element *= element_scale;
  config.cluster.net_bandwidth /= element_scale;
  config.cluster.disk_bandwidth /= element_scale;
  config.cluster.memory_bandwidth /= element_scale;
  config.cluster.local_bandwidth /= element_scale;
  // Headers/control messages do not grow with the modelled element size.
  config.cluster.control_message_bytes = static_cast<size_t>(
      std::max(8.0, 64.0 / element_scale));
  // Chunks keep their modelled byte granularity.
  config.cluster.chunk_elements = static_cast<size_t>(
      std::max(64.0, 2048.0 / element_scale));
  return config;
}

// Runs `program` on a private copy of `inputs`; aborts the benchmark on
// engine errors (misconfiguration should be loud).
inline runtime::RunStats RunOrDie(api::EngineKind engine,
                                  const lang::Program& program,
                                  const sim::SimFileSystem& inputs,
                                  const api::RunConfig& config) {
  sim::SimFileSystem fs = inputs;
  obs::MetricsRegistry metrics;
  api::RunConfig run_config = config;
  if (!MetricsOutPath().empty()) run_config.metrics = &metrics;
  auto result = api::Run(engine, program, &fs, run_config);
  MITOS_CHECK(result.ok()) << api::EngineKindName(engine) << ": "
                           << result.status().ToString();
  if (!MetricsOutPath().empty()) {
    static int run_index = 0;
    std::string json = metrics.ToJson();
    while (!json.empty() && (json.back() == '\n' || json.back() == ' ')) {
      json.pop_back();
    }
    std::ofstream out(MetricsOutPath(), std::ios::app);
    out << "{\"run\": " << run_index++ << ", \"engine\": \""
        << api::EngineKindName(engine) << "\", \"metrics\": " << json
        << "}\n";
  }
  return result->stats;
}

// Markdown-ish series table: one row per x value, one column per engine.
class SeriesTable {
 public:
  SeriesTable(std::string x_label, std::vector<std::string> columns)
      : x_label_(std::move(x_label)), columns_(std::move(columns)) {}

  void AddRow(const std::string& x, const std::vector<double>& values) {
    MITOS_CHECK_EQ(values.size(), columns_.size());
    rows_.push_back({x, values});
  }

  void Print(const char* unit = "s") const {
    std::printf("| %-18s |", x_label_.c_str());
    for (const std::string& c : columns_) std::printf(" %16s |", c.c_str());
    std::printf("\n|%s|", std::string(20, '-').c_str());
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s|", std::string(18, '-').c_str());
    }
    std::printf("\n");
    for (const Row& row : rows_) {
      std::printf("| %-18s |", row.x.c_str());
      for (double v : row.values) std::printf(" %14.3f%s |", v, unit);
      std::printf("\n");
    }
  }

 private:
  struct Row {
    std::string x;
    std::vector<double> values;
  };
  std::string x_label_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

inline std::string HumanBytes(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f KB", bytes / 1e3);
  }
  return buf;
}

}  // namespace mitos::bench

#endif  // MITOS_BENCH_BENCH_UTIL_H_
