// Figure 6: Visit Count (with the pageTypes join) when varying the total
// input size.
//
// Paper result: Mitos outperforms Spark by 23x growing past 100x with the
// input size (Spark is killed at the largest size), and outperforms Flink
// by 3.1-10.5x — the *largest* factor at the *smallest* inputs, where
// Flink's per-step native-iteration overhead (FLINK-3322) dominates.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::bench {
namespace {

void Main() {
  constexpr int kMachines = 25;
  constexpr int kDays = 30;  // scaled-down year (per-step ratios preserved)

  std::printf("=== Figure 6: Visit Count (with pageTypes) vs input size "
              "===\n");
  std::printf("(%d machines, %d days)\n\n", kMachines, kDays);

  SeriesTable table("total input", {"Spark", "Flink", "Mitos",
                                    "Spark/Mitos", "Flink/Mitos"});
  // Paper sweep: 0.045 GB to 45 GB total. The input splits into the page
  // visit logs (a modelled year's worth: per-day size = total/365) and a
  // pageTypes dataset that grows with the input — the paper attributes
  // Spark's worsening factor to the hoisting the per-step jobs cannot do,
  // which requires the loop-invariant side to scale with the input.
  std::vector<double> total_gb = {0.045, 0.45, 4.5, 45.0};
  for (double gb : total_gb) {
    double log_bytes = gb * 1e9 / 2;
    double types_bytes = gb * 1e9 / 2;
    double real_elements_per_day = log_bytes / 8.0 / 365.0;
    // Pick the element scale so each run simulates ~4k log elements/day.
    double scale = std::max(4.0, real_elements_per_day / 4'000.0);
    int64_t sim_entries_per_day = std::max<int64_t>(
        64, static_cast<int64_t>(real_elements_per_day / scale));
    // pageTypes rows model 200 bytes each (page id, type, payload).
    int64_t sim_pages = std::max<int64_t>(
        100, static_cast<int64_t>(types_bytes / 200.0 / scale));

    sim::SimFileSystem inputs;
    workloads::GenerateVisitLogs(&inputs,
                                 {.days = kDays,
                                  .entries_per_day = sim_entries_per_day,
                                  .num_pages = sim_pages});
    workloads::GeneratePageTypes(&inputs, {.num_pages = sim_pages,
                                           .num_types = 4,
                                           .padding_bytes = 180});
    lang::Program program = workloads::VisitCountProgram(
        {.days = kDays, .with_page_types = true});

    api::RunConfig config = MakeConfig(kMachines, scale);
    double spark = RunOrDie(api::EngineKind::kSpark, program, inputs, config)
                       .total_seconds;
    double flink = RunOrDie(api::EngineKind::kFlink, program, inputs, config)
                       .total_seconds;
    double mitos = RunOrDie(api::EngineKind::kMitos, program, inputs, config)
                       .total_seconds;
    table.AddRow(HumanBytes(gb * 1e9),
                 {spark, flink, mitos, spark / mitos, flink / mitos});
  }
  table.Print();
  std::printf(
      "\nPaper: Spark/Mitos 23x -> >100x with size; Flink/Mitos 10.5x at\n"
      "the smallest input (per-step overhead dominates) falling to ~3.1x\n"
      "at the largest (data path dominates).\n");
}

}  // namespace
}  // namespace mitos::bench

int main(int argc, char** argv) {
  mitos::bench::ParseBenchArgs(argc, argv, "fig6");
  mitos::bench::Main();
  return 0;
}
