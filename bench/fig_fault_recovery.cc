// Fault injection & recovery: k-means under deterministic faults.
//
// Not a figure from the paper — this benchmark measures the cost of the
// recovery machinery that rides on the paper's bag/path model: lost bags
// are identified by (operator x path-prefix) ids and recomputed from
// surviving upstream cached bags (lineage), so a crashed machine costs one
// re-executed attempt from the last completed control-flow step rather
// than a full rerun from scratch.
//
// Scenarios (all on the same k-means input; crash times are picked as a
// fraction of the measured fault-free makespan so the crash always lands
// mid-loop):
//   fault-free        reference run
//   crash (lineage)   machine 1 dies mid-loop, restarts, lineage recovery
//   crash (ckpt=2)    same crash, checkpointing every 2 decisions
//   drop 1%           every remote message dropped with p=0.01 (retransmit)
//   slow node x4      machine 1 computes 4x slower (no failure, just skew)
//
// With --metrics-out=FILE each run appends one JSON line whose metrics
// include attempts, recovery_seconds, recomputed_bags and replayed_bags.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/fault.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::bench {
namespace {

void Main() {
  constexpr int kMachines = 8;
  constexpr int kIterations = 8;
  constexpr double kScale = 500;

  sim::SimFileSystem inputs;
  workloads::GeneratePoints(&inputs,
                            {.num_points = 20'000, .num_clusters = 4});
  lang::Program program = workloads::KMeansProgram({.iterations = kIterations});
  api::RunConfig config = MakeConfig(kMachines, kScale);

  std::printf("=== Fault injection & recovery: k-means ===\n");
  std::printf("(%d machines, %d iterations, Mitos engine)\n\n", kMachines,
              kIterations);

  runtime::RunStats base =
      RunOrDie(api::EngineKind::kMitos, program, inputs, config);
  const double crash_at = 0.4 * base.total_seconds;
  const double restart_after = 0.1 * base.total_seconds;

  struct Scenario {
    std::string name;
    sim::FaultPlan plan;
  };
  std::vector<Scenario> scenarios;
  {
    sim::FaultPlan crash;
    crash.crashes.push_back(
        {.machine = 1, .at = crash_at, .restart_after = restart_after});
    scenarios.push_back({"crash (lineage)", crash});

    sim::FaultPlan ckpt = crash;
    ckpt.checkpoint_every = 2;
    scenarios.push_back({"crash (ckpt=2)", ckpt});

    sim::FaultPlan drop;
    drop.drop_probability = 0.01;
    scenarios.push_back({"drop 1%", drop});

    sim::FaultPlan slow;
    slow.slowdowns.push_back({.machine = 1, .multiplier = 4.0});
    scenarios.push_back({"slow node x4", slow});
  }

  SeriesTable table("scenario", {"total", "recovery", "overhead x",
                                 "recomputed", "replayed", "attempts"});
  table.AddRow("fault-free",
               {base.total_seconds, 0.0, 1.0, 0.0, 0.0,
                static_cast<double>(base.attempts)});
  for (const Scenario& scenario : scenarios) {
    api::RunConfig faulted = config;
    faulted.faults = &scenario.plan;
    runtime::RunStats stats =
        RunOrDie(api::EngineKind::kMitos, program, inputs, faulted);
    table.AddRow(scenario.name,
                 {stats.total_seconds, stats.recovery_seconds,
                  stats.total_seconds / base.total_seconds,
                  static_cast<double>(stats.recomputed_bags),
                  static_cast<double>(stats.replayed_bags),
                  static_cast<double>(stats.attempts)});
  }
  table.Print("");
  std::printf(
      "\n(total/recovery in virtual seconds; a crash costs roughly the\n"
      "restart wait plus re-execution of the last unfinished step — the\n"
      "checkpoint run replays strictly more bags at zero cost.)\n");
}

}  // namespace
}  // namespace mitos::bench

int main(int argc, char** argv) {
  mitos::bench::ParseBenchArgs(argc, argv, "fig_fault_recovery");
  mitos::bench::Main();
  return 0;
}
