// Figure 5: strong scaling of Visit Count over the worker-machine count.
//
// Paper result: Mitos scales gracefully; Spark and Flink get *slower* with
// more machines because their per-iteration overhead grows with the machine
// count and dominates. At the maximum machine count Mitos is ~10x faster
// than Spark and ~3x faster than Flink.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::bench {
namespace {

void Main() {
  constexpr double kScale = 100;
  constexpr int kDays = 60;                   // scaled-down year
  constexpr int64_t kEntriesPerDay = 26'000;  // ~21 MB/day modelled

  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = kDays,
                                         .entries_per_day = kEntriesPerDay,
                                         .num_pages = 10'000});
  lang::Program program = workloads::VisitCountProgram({.days = kDays});

  std::printf("=== Figure 5: strong scaling for Visit Count ===\n");
  std::printf("(%d days, ~21 MB/day modelled)\n\n", kDays);

  SeriesTable table("machines", {"Spark", "Flink", "Mitos"});
  std::vector<int> machine_counts = {4, 8, 12, 16, 20, 25};
  double spark_last = 0, flink_last = 0, mitos_last = 0;
  for (int machines : machine_counts) {
    api::RunConfig config = MakeConfig(machines, kScale);
    spark_last = RunOrDie(api::EngineKind::kSpark, program, inputs, config)
                     .total_seconds;
    flink_last = RunOrDie(api::EngineKind::kFlink, program, inputs, config)
                     .total_seconds;
    mitos_last = RunOrDie(api::EngineKind::kMitos, program, inputs, config)
                     .total_seconds;
    table.AddRow(std::to_string(machines),
                 {spark_last, flink_last, mitos_last});
  }
  table.Print();

  std::printf("\nAt %d machines: Mitos is %.1fx faster than Spark "
              "(paper: ~10x), %.1fx faster than Flink (paper: ~3x)\n",
              machine_counts.back(), spark_last / mitos_last,
              flink_last / mitos_last);
}

}  // namespace
}  // namespace mitos::bench

int main(int argc, char** argv) {
  mitos::bench::ParseBenchArgs(argc, argv, "fig5");
  mitos::bench::Main();
  return 0;
}
