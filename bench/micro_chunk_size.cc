// Chunk-size ablation for the batched data plane (common/chunk.h): a
// map/filter hot loop over a large int64 bag, swept over chunk
// granularities on both backends, with the columnar plane on vs off.
//
// What each axis shows:
//  - DES virtual time (deterministic): the per-chunk cost model charges
//    cpu_per_chunk + bytes*cpu_per_byte per kernel visit, so tiny chunks
//    pay a visible dispatch overhead while a full default chunk costs
//    exactly what the old per-element model charged. Virtual time is
//    identical for columnar on/off — the model prices bytes moved, not the
//    in-memory representation.
//  - Threads wall clock (host-specific): real CPU cost of the data plane.
//    Columnar on runs the vectorized int64 kernels over column chunks;
//    columnar off is the pre-batching plane (every chunk a boxed
//    DatumVector, every kernel visit through the Datum virtual interface).
//    The on/off ratio is the measured speedup of the batched plane on the
//    map/filter hot loop.
//
// Method: per configuration, `reps` timed runs, minimum wall time reported
// (standard under scheduler noise). Element-identity of all modes is
// covered by the differential suite, not here.
//
// Flags:
//   --out=FILE   write the table as JSON (the committed
//                bench/baselines/BENCH_chunk_ablation.json artifact;
//                wall-clock quantities are host-specific, so bench_diff
//                never gates on this file)
//   --check      hard-fail unless the columnar plane is >= 1.5x faster
//                than boxed (threads wall clock) at every chunk size
//                >= 1024; used when refreshing the committed artifact,
//                off in CI where machine noise rules
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/logging.h"
#include "lang/builder.h"
#include "runtime/executor.h"
#include "sim/filesystem.h"

namespace mitos::bench {
namespace {

constexpr int kElements = 400'000;
constexpr int kSteps = 8;

// The hot loop: per step one vectorizable map (+1) and one keep-all filter
// over the full bag, with a scalar loop counter driving the condition.
lang::Program HotLoopProgram() {
  lang::ProgramBuilder pb;
  pb.Assign("data", lang::ReadFile(lang::LitString("data")));
  pb.Assign("i", lang::BagLit({Datum::Int64(0)}));
  pb.While(lang::Lt(lang::ScalarFromBag(lang::Var("i")),
                    lang::LitInt(kSteps)),
           [&] {
             pb.Assign("data", lang::Map(lang::Var("data"),
                                         lang::fns::AddInt64(1)));
             pb.Assign("data", lang::Filter(lang::Var("data"),
                                            lang::fns::GtInt64(-1)));
             pb.Assign("i", lang::Map(lang::Var("i"),
                                      lang::fns::AddInt64(1)));
           });
  pb.WriteFile(lang::Count(lang::Var("data")), lang::LitString("out"));
  return pb.Build();
}

sim::SimFileSystem MakeInput() {
  sim::SimFileSystem fs;
  DatumVector data;
  data.reserve(kElements);
  for (int i = 0; i < kElements; ++i) {
    data.push_back(Datum::Int64(i % 1000));
  }
  fs.Write("data", std::move(data));
  return fs;
}

struct Timing {
  double seconds = 0;       // DES: virtual; threads: min wall over reps
  int64_t chunks = 0;       // chunks delivered (from RunStats)
  int64_t fallbacks = 0;    // of which boxed fallbacks
};

Timing TimedRun(const sim::SimFileSystem& inputs,
                const lang::Program& program, api::BackendKind backend,
                size_t chunk_elements, bool columnar, int reps) {
  Timing timing;
  timing.seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    sim::SimFileSystem fs = inputs;
    api::RunConfig config{.machines = 4};
    config.backend = backend;
    config.cluster.chunk_elements = chunk_elements;
    config.columnar = columnar;
    const auto t0 = std::chrono::steady_clock::now();
    auto result = api::Run(api::EngineKind::kMitos, program, &fs, config);
    const auto t1 = std::chrono::steady_clock::now();
    MITOS_CHECK(result.ok()) << result.status().ToString();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    timing.seconds = std::min(timing.seconds,
                              backend == api::BackendKind::kDes
                                  ? result->stats.total_seconds
                                  : wall);
    timing.chunks = result->stats.chunks;
    timing.fallbacks = result->stats.chunk_fallbacks;
  }
  return timing;
}

struct Row {
  size_t chunk_elements;
  double des_seconds;        // virtual time (columnar-independent)
  double threads_on_seconds;  // wall, columnar plane
  double threads_off_seconds; // wall, boxed plane
  int64_t chunks;
  int64_t fallbacks;
  double speedup() const {
    return threads_off_seconds / threads_on_seconds;
  }
};

}  // namespace
}  // namespace mitos::bench

int main(int argc, char** argv) {
  using namespace mitos;
  using bench::Row;

  std::string out_path;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg == "--check") {
      check = true;
    } else {
      std::fprintf(stderr, "ignoring unknown flag: %s\n", arg.c_str());
    }
  }

  constexpr int kReps = 5;
  const lang::Program program = bench::HotLoopProgram();
  const sim::SimFileSystem inputs = bench::MakeInput();

  std::printf("--- chunk-size ablation: %d-element int64 bag, %d-step "
              "map/filter loop, 4 machines ---\n",
              bench::kElements, bench::kSteps);
  std::printf("(DES seconds are virtual time; threads columns are minimum "
              "wall time over %d reps)\n\n",
              kReps);
  std::printf("%8s %12s %16s %17s %9s %9s %10s\n", "chunk", "DES (s)",
              "threads on (ms)", "threads off (ms)", "speedup", "chunks",
              "fallback");
  std::vector<Row> rows;
  for (size_t chunk_elements : {64u, 256u, 1024u, 4096u}) {
    Row row{};
    row.chunk_elements = chunk_elements;
    // DES: one rep is enough, virtual time is deterministic.
    bench::Timing des = bench::TimedRun(inputs, program,
                                        api::BackendKind::kDes,
                                        chunk_elements, true, /*reps=*/1);
    row.des_seconds = des.seconds;
    row.chunks = des.chunks;
    row.fallbacks = des.fallbacks;
    // Threads: alternate modes within each rep so drift hits both evenly.
    bench::Timing on{}, off{};
    on.seconds = off.seconds = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      bench::Timing off_rep = bench::TimedRun(inputs, program,
                                              api::BackendKind::kThreads,
                                              chunk_elements, false, 1);
      bench::Timing on_rep = bench::TimedRun(inputs, program,
                                             api::BackendKind::kThreads,
                                             chunk_elements, true, 1);
      off.seconds = std::min(off.seconds, off_rep.seconds);
      on.seconds = std::min(on.seconds, on_rep.seconds);
    }
    row.threads_on_seconds = on.seconds;
    row.threads_off_seconds = off.seconds;
    std::printf("%8zu %12.4f %16.2f %17.2f %8.2fx %9lld %10lld\n",
                row.chunk_elements, row.des_seconds,
                row.threads_on_seconds * 1e3,
                row.threads_off_seconds * 1e3, row.speedup(),
                static_cast<long long>(row.chunks),
                static_cast<long long>(row.fallbacks));
    rows.push_back(row);
  }
  std::printf(
      "\n(speedup = threads off / on: the batched plane vs the pre-batching\n"
      " boxed plane on the same backend. DES time rises as chunks shrink —\n"
      " the per-chunk dispatch charge dominates tiny chunks — and is the\n"
      " same for both planes: the model prices bytes, not representation.)\n");

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    MITOS_CHECK(static_cast<bool>(out)) << "cannot write " << out_path;
    out << "{\"schema\":1,\"figure\":\"chunk_ablation\",\n"
        << " \"note\":\"threads_* are wall-clock seconds, host-specific; "
        << "min of " << kReps << " reps; never gated by bench_diff\",\n"
        << " \"entries\":[\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      char line[320];
      std::snprintf(line, sizeof line,
                    "{\"key\":\"hotloop/c%zu\",\"chunk_elements\":%zu,"
                    "\"des_seconds\":%.6f,\"threads_on_seconds\":%.6f,"
                    "\"threads_off_seconds\":%.6f,\"speedup\":%.3f,"
                    "\"chunks\":%lld,\"chunk_fallbacks\":%lld}",
                    r.chunk_elements, r.chunk_elements, r.des_seconds,
                    r.threads_on_seconds, r.threads_off_seconds,
                    r.speedup(), static_cast<long long>(r.chunks),
                    static_cast<long long>(r.fallbacks));
      out << line << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "]}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (check) {
    for (const Row& r : rows) {
      if (r.chunk_elements < 1024) continue;  // tiny chunks: dispatch-bound
      MITOS_CHECK(r.speedup() >= 1.5)
          << "columnar plane under 1.5x at chunk_elements="
          << r.chunk_elements << ": on=" << r.threads_on_seconds
          << "s off=" << r.threads_off_seconds << "s";
    }
    std::printf("check passed: columnar >= 1.5x boxed at every chunk size "
                ">= 1024\n");
  }
  return 0;
}
