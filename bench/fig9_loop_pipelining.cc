// Figure 9: loop pipelining ablation — Mitos with and without overlapping
// iteration steps, over the machine count.
//
// Paper result: pipelining gains grow with the machine count, from ~1.1x
// at few machines (the computation is CPU-bound, little to overlap) to
// ~4x at 10+ machines (per-step stages balance out and overlap fully).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::bench {
namespace {

void Main() {
  constexpr double kScale = 100;
  constexpr int kDays = 60;
  constexpr int64_t kEntriesPerDay = 26'000;  // ~21 MB/day modelled

  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = kDays,
                                         .entries_per_day = kEntriesPerDay,
                                         .num_pages = 10'000});
  lang::Program program = workloads::VisitCountProgram({.days = kDays});

  std::printf("=== Figure 9: loop pipelining ablation ===\n");
  std::printf("(Visit Count, %d days, ~21 MB/day modelled)\n\n", kDays);

  SeriesTable table("machines",
                    {"Mitos (not pipelined)", "Mitos", "speedup"});
  for (int machines : {4, 8, 12, 16, 20, 25}) {
    api::RunConfig config = MakeConfig(machines, kScale);
    double barriered = RunOrDie(api::EngineKind::kMitosNoPipelining, program,
                                inputs, config)
                           .total_seconds;
    double pipelined =
        RunOrDie(api::EngineKind::kMitos, program, inputs, config)
            .total_seconds;
    table.AddRow(std::to_string(machines),
                 {barriered, pipelined, barriered / pipelined});
  }
  table.Print();
  std::printf("\nPaper: speedup 1.1x at few machines growing to ~4x.\n");
}

}  // namespace
}  // namespace mitos::bench

int main(int argc, char** argv) {
  mitos::bench::ParseBenchArgs(argc, argv, "fig9");
  mitos::bench::Main();
  return 0;
}
